package xcql

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"time"

	"xcql/internal/budget"
	"xcql/internal/fragment"
	"xcql/internal/obs"
	"xcql/internal/tagstruct"
	"xcql/internal/temporal"
	"xcql/internal/xmldom"
	"xcql/internal/xq"
	"xcql/internal/xtime"
)

// Runtime ties the compiler to live fragment stores: it registers named
// streams, compiles XCQL queries under a chosen plan, and supplies the
// intrinsic functions the translated plans call.
type Runtime struct {
	mu     sync.RWMutex
	stores map[string]*fragment.Store
	funcs  map[string]xq.Func
	docs   map[string]*xmldom.Node

	// admission control: maxEvals > 0 bounds concurrent evaluations;
	// excess attempts are rejected with *OverloadError instead of
	// queuing unboundedly.
	maxEvals    int
	activeEvals int

	// trace is the optional span sink: nil (the default) disables
	// tracing entirely, and the disabled path neither allocates nor
	// reads the clock beyond the always-on phase timings.
	trace obs.TraceSink

	// parallelism and cache are the runtime-wide execution defaults,
	// overridable per query (Query.WithParallelism / Query.WithCache).
	// parallelism <= 1 means sequential; a nil cache disables caching.
	parallelism int
	cache       *fragment.Cache
}

// NewRuntime returns an empty runtime.
func NewRuntime() *Runtime {
	return &Runtime{
		stores: make(map[string]*fragment.Store),
		funcs:  make(map[string]xq.Func),
		docs:   make(map[string]*xmldom.Node),
	}
}

// RegisterStream makes a fragment store queryable as stream(name).
func (rt *Runtime) RegisterStream(name string, store *fragment.Store) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.stores[name] = store
}

// Store returns the store registered under name, or nil.
func (rt *Runtime) Store(name string) *fragment.Store {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.stores[name]
}

// RegisterFunc registers a user function (e.g. the paper's triangulate
// and distance helpers) callable from queries.
func (rt *Runtime) RegisterFunc(name string, f xq.Func) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.funcs[name] = f
}

// RegisterDoc makes a static document available to doc(uri).
func (rt *Runtime) RegisterDoc(uri string, doc *xmldom.Node) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.docs[uri] = doc
}

// Structures snapshots the tag structures of all registered streams.
func (rt *Runtime) Structures() map[string]*tagstruct.Structure {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make(map[string]*tagstruct.Structure, len(rt.stores))
	for name, st := range rt.stores {
		out[name] = st.Structure()
	}
	return out
}

// SetMaxConcurrentEvals bounds the number of evaluations the runtime
// admits at once (n <= 0 means unlimited, the default). When the bound
// is reached, further Eval/EvalContext calls fail fast with an
// *OverloadError — explicit load shedding instead of unbounded queuing.
func (rt *Runtime) SetMaxConcurrentEvals(n int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if n < 0 {
		n = 0
	}
	rt.maxEvals = n
}

// ActiveEvals reports the number of evaluations currently running.
func (rt *Runtime) ActiveEvals() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.activeEvals
}

func (rt *Runtime) admit() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.maxEvals > 0 && rt.activeEvals >= rt.maxEvals {
		return &OverloadError{Active: rt.activeEvals, Max: rt.maxEvals}
	}
	rt.activeEvals++
	return nil
}

func (rt *Runtime) release() {
	rt.mu.Lock()
	rt.activeEvals--
	rt.mu.Unlock()
}

// SetParallelism sets the runtime-wide default hole-resolution
// parallelism: n > 1 fans independent hole resolutions out over n
// workers during reconstruction and result materialization; n <= 1 (the
// default) is sequential. Results are byte-identical either way.
// Queries override it with WithParallelism.
func (rt *Runtime) SetParallelism(n int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if n < 0 {
		n = 0
	}
	rt.parallelism = n
}

// SetCache installs a runtime-wide filler materialization cache bounded
// to size entries; size <= 0 removes it. The cache is shared by every
// query on this runtime (continuous queries warm it for each other) and
// invalidates itself on store ingest. Queries override it with
// WithCache.
func (rt *Runtime) SetCache(size int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if size <= 0 {
		rt.cache = nil
		return
	}
	rt.cache = fragment.NewCache(size)
}

// Cache returns the runtime-wide cache installed by SetCache, or nil.
func (rt *Runtime) Cache() *fragment.Cache {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.cache
}

// SetTraceSink installs (or, with nil, removes) the span sink that
// receives parse/translate/execute/materialize trace events for every
// compile and evaluation on this runtime.
func (rt *Runtime) SetTraceSink(s obs.TraceSink) {
	rt.mu.Lock()
	rt.trace = s
	rt.mu.Unlock()
}

func (rt *Runtime) traceSink() obs.TraceSink {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.trace
}

// Query is a compiled XCQL query bound to a runtime.
type Query struct {
	rt     *Runtime
	Mode   Mode
	Source string
	// AST is the parsed, untranslated query.
	AST xq.Expr
	// Plan is the translated engine expression actually evaluated.
	Plan xq.Expr
	// Limits bounds every evaluation of this query: steps, recursion
	// depth, cardinality, bytes and wall time. The zero value is
	// unlimited except for the recursion-depth default. Set it before
	// sharing the query across goroutines.
	Limits Limits

	// compile-phase wall times, copied into every evaluation's stats.
	parseTime     time.Duration
	translateTime time.Duration

	// per-query execution options; unset falls back to the runtime-wide
	// defaults (Runtime.SetParallelism / Runtime.SetCache).
	parallelism    int
	parallelismSet bool
	cache          *fragment.Cache
	cacheSet       bool

	statsMu   sync.Mutex
	lastStats *obs.EvalStats
}

// WithParallelism overrides the runtime's default hole-resolution
// parallelism for this query: n > 1 fans hole resolution out over n
// workers, n <= 1 forces sequential execution even when the runtime
// default is parallel. Returns q for chaining; set it before sharing the
// query across goroutines.
func (q *Query) WithParallelism(n int) *Query {
	if n < 0 {
		n = 0
	}
	q.parallelism = n
	q.parallelismSet = true
	return q
}

// WithCache gives this query its own filler materialization cache
// bounded to size entries, overriding the runtime-wide cache; size <= 0
// disables caching for this query even when the runtime has a cache.
// Returns q for chaining; set it before sharing the query across
// goroutines.
func (q *Query) WithCache(size int) *Query {
	if size <= 0 {
		q.cache = nil
	} else {
		q.cache = fragment.NewCache(size)
	}
	q.cacheSet = true
	return q
}

// QueryCache returns the cache this query's evaluations use: its own
// (WithCache), else the runtime-wide one. Nil means caching is off.
func (q *Query) QueryCache() *fragment.Cache {
	if q.cacheSet {
		return q.cache
	}
	return q.rt.Cache()
}

// Parallelism returns the worker count this query's evaluations use
// (0 or 1 means sequential).
func (q *Query) Parallelism() int {
	if q.parallelismSet {
		return q.parallelism
	}
	q.rt.mu.RLock()
	defer q.rt.mu.RUnlock()
	return q.rt.parallelism
}

// LastStats returns a snapshot of the cost counters from the most recent
// evaluation of this query (last-writer-wins under concurrent use). The
// zero value is returned before the first evaluation. Stats are recorded
// even when the evaluation failed, so a budget trip still shows how far
// it got.
func (q *Query) LastStats() obs.EvalStats {
	q.statsMu.Lock()
	defer q.statsMu.Unlock()
	if q.lastStats == nil {
		return obs.EvalStats{}
	}
	return *q.lastStats
}

func (q *Query) storeStats(s *obs.EvalStats) {
	q.statsMu.Lock()
	q.lastStats = s
	q.statsMu.Unlock()
}

// Compile parses src and translates it for the given mode against the
// streams currently registered.
func (rt *Runtime) Compile(src string, mode Mode) (*Query, error) {
	parseStart := time.Now()
	ast, err := xq.Parse(src)
	parseTime := time.Since(parseStart)
	if err != nil {
		return nil, err
	}
	trStart := time.Now()
	plan, err := Compile(ast, mode, rt.Structures())
	translateTime := time.Since(trStart)
	if err != nil {
		return nil, err
	}
	if sink := rt.traceSink(); sink != nil {
		sink.Span("parse", src, parseStart, parseTime)
		sink.Span("translate", mode.String(), trStart, translateTime)
	}
	return &Query{
		rt: rt, Mode: mode, Source: src, AST: ast, Plan: plan,
		parseTime: parseTime, translateTime: translateTime,
	}, nil
}

// MustCompile compiles or panics; for tests and examples.
func (rt *Runtime) MustCompile(src string, mode Mode) *Query {
	q, err := rt.Compile(src, mode)
	if err != nil {
		panic(err)
	}
	return q
}

// Eval runs the plan at the evaluation instant and materializes the
// result: holes remaining in returned fragments are resolved (the final
// Materialize step of Figure 2), so callers always see the temporal view.
func (q *Query) Eval(at time.Time) (xq.Sequence, error) {
	return q.eval(context.Background(), at, q.Limits, true)
}

// EvalContext is Eval under a context: cancelling ctx aborts the
// evaluation cooperatively (the evaluator polls between steps), and the
// query's Limits are enforced. Limit trips, cancellation and evaluator
// panics all surface as a structured *EvalError carrying the query text
// and wrapping the *budget.ResourceError (or panic) that caused it; the
// engine, its stores and other queries remain fully usable afterwards.
func (q *Query) EvalContext(ctx context.Context, at time.Time) (xq.Sequence, error) {
	return q.eval(ctx, at, q.Limits, true)
}

// EvalLimits is EvalContext with explicit limits overriding q.Limits
// for this evaluation only.
func (q *Query) EvalLimits(ctx context.Context, at time.Time, lim Limits) (xq.Sequence, error) {
	return q.eval(ctx, at, lim, true)
}

// EvalRaw runs the plan without the final materialization; benchmarks use
// it to time pure plan execution, and callers that re-fragment results
// want the holes kept.
func (q *Query) EvalRaw(at time.Time) (xq.Sequence, error) {
	return q.eval(context.Background(), at, q.Limits, false)
}

// EvalRawContext is EvalRaw under a context and the query's Limits.
func (q *Query) EvalRawContext(ctx context.Context, at time.Time) (xq.Sequence, error) {
	return q.eval(ctx, at, q.Limits, false)
}

// eval is the engine boundary: admission control, budget construction,
// plan evaluation, result materialization, and panic containment. Any
// panic escaping the evaluator — a budget trip from a non-error-returning
// walk, or a genuine bug — is converted into an *EvalError here instead
// of killing the process and every attached continuous query.
func (q *Query) eval(ctx context.Context, at time.Time, lim Limits, materialize bool) (seq xq.Sequence, err error) {
	if err := q.rt.admit(); err != nil {
		return nil, err
	}
	defer q.rt.release()
	par := q.Parallelism()
	cache := q.QueryCache()
	stats := &obs.EvalStats{
		Plan:          q.Mode.String(),
		ParseTime:     q.parseTime,
		TranslateTime: q.translateTime,
		Parallelism:   par,
	}
	sink := q.rt.traceSink()
	b := budget.New(ctx, lim)
	var wait *obs.Histogram
	if par > 1 {
		wait = obs.NewHistogram()
	}
	static := q.rt.newStatic(at, b, stats, par, cache, wait, q.Mode)
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			seq = nil
			if re, ok := p.(*budget.ResourceError); ok {
				err = &EvalError{Query: q.Source, Mode: q.Mode, Err: re}
			} else {
				err = &EvalError{
					Query: q.Source,
					Mode:  q.Mode,
					Err:   fmt.Errorf("panic: %v", p),
					Stack: debug.Stack(),
				}
			}
		}
		// stats are recorded even on failure: a tripped budget still
		// shows how far the evaluation got before it was cut off.
		stats.Steps, stats.Items, stats.BytesMaterialized = b.Used()
		stats.ParallelWait = wait.Snapshot()
		stats.TotalTime = time.Since(start)
		q.storeStats(stats)
		if sink != nil {
			sink.Span("eval", q.Mode.String(), start, stats.TotalTime)
		}
	}()
	execStart := time.Now()
	seq, err = xq.Eval(q.Plan, xq.NewContext(static))
	stats.ExecTime = time.Since(execStart)
	if sink != nil {
		sink.Span("execute", q.Mode.String(), execStart, stats.ExecTime)
	}
	if err != nil {
		return nil, q.wrapResource(err)
	}
	if materialize {
		matStart := time.Now()
		seq = q.rt.materializeResult(seq, static, q.Mode)
		stats.MaterializeTime = time.Since(matStart)
		if sink != nil {
			sink.Span("materialize", q.Mode.String(), matStart, stats.MaterializeTime)
		}
	}
	return seq, nil
}

// wrapResource dresses resource-limit errors in the *EvalError envelope
// (query text + plan); other evaluation errors pass through untouched.
func (q *Query) wrapResource(err error) error {
	var re *budget.ResourceError
	if errors.As(err, &re) {
		return &EvalError{Query: q.Source, Mode: q.Mode, Err: err}
	}
	return err
}

// newStatic assembles the evaluation environment: intrinsics, user
// functions, the resolvers, the evaluation's resource budget, and the
// parallelism/cache execution options. Under QaCPlusPlus the root,
// projection and hole-materialization paths are swapped for their
// label-index-served variants, so a QaC++ evaluation never scans the
// fragment log and never resolves a hole.
func (rt *Runtime) newStatic(at time.Time, b *budget.Budget, s *obs.EvalStats, par int, cache *fragment.Cache, wait *obs.Histogram, mode Mode) *xq.Static {
	funcs := map[string]xq.Func{
		fnView:      rt.intrView,
		fnRoot:      rt.intrRoot,
		fnFillers:   rt.intrFillers,
		fnFillersB:  rt.intrFillersBatch,
		fnByTSID:    rt.intrByTSID,
		fnIProj:     rt.intrIProj,
		fnVProj:     rt.intrVProj,
		fnByLabel:   rt.intrByLabel,
		fnLabelKids: rt.intrLabelKids,
	}
	holes := temporal.BudgetResolver(b, rt.combinedResolver(at, s, cache))
	if mode == QaCPlusPlus {
		funcs[fnRoot] = rt.intrRootLabeled
		funcs[fnIProj] = rt.intrIProjLabeled
		funcs[fnVProj] = rt.intrVProjLabeled
		holes = temporal.BudgetResolver(b, rt.labelResolver(at, s))
	}
	rt.mu.RLock()
	for name, f := range rt.funcs {
		funcs[name] = f
	}
	rt.mu.RUnlock()
	static := &xq.Static{
		Now:   at,
		Funcs: funcs,
		Doc: func(uri string) (*xmldom.Node, error) {
			rt.mu.RLock()
			defer rt.mu.RUnlock()
			if d, ok := rt.docs[uri]; ok {
				return d, nil
			}
			return nil, fmt.Errorf("xcql: unknown document %q", uri)
		},
		Holes:       holes,
		Budget:      b,
		Stats:       s,
		Parallelism: par,
		Cache:       cache,
		Wait:        wait,
	}
	static.Stream = func(name string) (xq.Sequence, error) {
		// uncompiled stream() access sees the materialized view
		return rt.intrViewNamed(name, static)
	}
	return static
}

// combinedResolver resolves hole ids across all registered stores; filler
// ids are unique within a stream, and servers are expected to keep id
// spaces disjoint across streams they co-publish (ours do). Each store
// tried counts as one lookup pass in the stats (nil s collects nothing);
// with a cache, a hit replaces the pass with a CacheHits count.
func (rt *Runtime) combinedResolver(at time.Time, s *obs.EvalStats, cache *fragment.Cache) temporal.HoleResolver {
	return func(holeID int) []*xmldom.Node {
		s.AddHoles(1)
		rt.mu.RLock()
		defer rt.mu.RUnlock()
		for _, st := range rt.stores {
			els, hit := cache.GetFillers(st, holeID, at)
			if hit {
				s.AddCacheHits(1)
			} else {
				if cache != nil {
					s.AddCacheMisses(1)
				}
				s.AddFillers(st.LookupCost(len(els)))
			}
			if len(els) > 0 {
				return els
			}
		}
		return nil
	}
}

// labelResolver resolves hole ids across all registered stores through
// their label indexes: no log pass ever runs and no hole is counted as
// resolved — each store tried charges one label-range lookup instead.
// This is the QaC++ materialization path; HolesResolved stays 0 by
// construction.
func (rt *Runtime) labelResolver(at time.Time, s *obs.EvalStats) temporal.HoleResolver {
	return func(holeID int) []*xmldom.Node {
		rt.mu.RLock()
		defer rt.mu.RUnlock()
		for _, st := range rt.stores {
			els := st.Labels().Fillers(holeID, at)
			s.AddLabelRangeLookup(len(els))
			if len(els) > 0 {
				return els
			}
		}
		return nil
	}
}

func (rt *Runtime) storeOrErr(name string) (*fragment.Store, error) {
	st := rt.Store(name)
	if st == nil {
		return nil, fmt.Errorf("xcql: stream %q is not registered", name)
	}
	return st, nil
}

// --- intrinsics -----------------------------------------------------------

func argString(args []xq.Sequence, i int) string {
	if i >= len(args) || len(args[i]) == 0 {
		return ""
	}
	return xq.StringValue(args[i][0])
}

// chargeNodes meters the output of a store walk (get_fillers and the
// tsid scan): cardinality plus the tree bytes of every resolved filler
// version. This is what bounds the QaC/QaC+ access paths.
func chargeNodes(b *budget.Budget, seq xq.Sequence) error {
	if b == nil {
		return nil
	}
	if err := b.AddItems(len(seq)); err != nil {
		return err
	}
	var n int64
	for _, it := range seq {
		if nd, ok := it.(*xmldom.Node); ok {
			n += int64(nd.TreeSize())
		}
	}
	return b.AddBytes(n)
}

func (rt *Runtime) intrViewNamed(name string, static *xq.Static) (xq.Sequence, error) {
	st, err := rt.storeOrErr(name)
	if err != nil {
		return nil, err
	}
	// CaQ's whole-document materialization is metered: an oversized view
	// aborts mid-reconstruction instead of exhausting memory first
	view, err := temporal.TemporalizeWith(st, static.Now, temporal.TemporalizeOptions{
		Budget:      static.Budget,
		Stats:       static.Stats,
		Cache:       static.Cache,
		Parallelism: static.Parallelism,
		Wait:        static.Wait,
	})
	if err != nil {
		return nil, err
	}
	doc := xmldom.NewDocument()
	doc.AppendChild(view)
	return xq.Singleton(doc), nil
}

func (rt *Runtime) intrView(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	return rt.intrViewNamed(argString(args, 0), ctx.Static)
}

func (rt *Runtime) intrRoot(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	st, err := rt.storeOrErr(argString(args, 0))
	if err != nil {
		return nil, err
	}
	els := st.GetFillers(fragment.RootFillerID, ctx.Static.Now)
	ctx.Static.Stats.AddFillers(st.LookupCost(len(els)))
	if len(els) == 0 {
		return nil, nil
	}
	// only the current version of the root document is the stream's face
	doc := xmldom.NewDocument()
	doc.AppendChild(els[len(els)-1])
	return xq.Singleton(doc), nil
}

// intrRootLabeled is the QaC++ root access: the root filler's versions
// come from the label index's version groups, so the call costs one
// label-range lookup and zero log scans (intrRoot's pass would cost a
// whole-log scan on the scan-mode store).
func (rt *Runtime) intrRootLabeled(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	st, err := rt.storeOrErr(argString(args, 0))
	if err != nil {
		return nil, err
	}
	els := st.Labels().Fillers(fragment.RootFillerID, ctx.Static.Now)
	ctx.Static.Stats.AddLabelRangeLookup(len(els))
	if len(els) == 0 {
		return nil, nil
	}
	doc := xmldom.NewDocument()
	doc.AppendChild(els[len(els)-1])
	return xq.Singleton(doc), nil
}

// intrFillers is get_fillers of §5: for every hole with the given tsid in
// the input nodes, return the versions of its fillers.
//
// The per-hole store passes are independent of each other, so this is
// the QaC fan-out point: with Parallelism > 1 the distinct ids resolve
// on the worker pool and the output is assembled from the memo in the
// original order — the sequential concatenation order, byte for byte.
func (rt *Runtime) intrFillers(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("xcql: %s wants (nodes, stream, tsid)", fnFillers)
	}
	st, err := rt.storeOrErr(argString(args, 1))
	if err != nil {
		return nil, err
	}
	if len(args[2]) == 0 {
		return nil, fmt.Errorf("xcql: empty tsid argument")
	}
	tsid := int(xq.NumberValue(args[2][0]))
	// collect the ordered work list: inline (already materialized)
	// elements interleave with hole ids, and each filler id resolves once
	// per call — several versions of the same container carry the same
	// holes, and a child is one element, not one element per parent
	// version (matches Temporalize's rule)
	type item struct {
		inline *xmldom.Node
		id     int
		isID   bool
	}
	var order []item
	var ids []int
	resolved := make(map[int]bool)
	for _, n := range xq.Nodes(args[0]) {
		holeIDs := fragment.HoleIDs(n, tsid)
		if len(holeIDs) == 0 {
			// The node may already be materialized (e.g. the output of an
			// interval projection, which resolves holes while clipping);
			// the versions then sit inline as name-matched children.
			if tag := st.Structure().ByID(tsid); tag != nil {
				for _, c := range n.ChildElements(tag.Name) {
					order = append(order, item{inline: c})
				}
			}
			continue
		}
		for _, id := range holeIDs {
			if resolved[id] {
				continue
			}
			resolved[id] = true
			ids = append(ids, id)
			order = append(order, item{id: id, isID: true})
		}
	}
	// one store pass per hole id: this is the per-hole cost the QaC plan
	// pays and the batched QaC+ flavour avoids
	memo, err := rt.resolvePerHole(ctx.Static, st, ids)
	if err != nil {
		return nil, err
	}
	var out xq.Sequence
	for _, it := range order {
		if !it.isID {
			out = append(out, it.inline)
			continue
		}
		for _, el := range memo[it.id] {
			out = append(out, el)
		}
	}
	if err := chargeNodes(ctx.Static.Budget, out); err != nil {
		return nil, err
	}
	return out, nil
}

// resolvePerHole issues one get_fillers pass per id — sequentially, or
// on the worker pool when the evaluation's Parallelism allows. Every
// resolution charges one budget step (cancellation poll), one hole and
// either the lookup-pass cost (store hit) or a cache hit.
func (rt *Runtime) resolvePerHole(static *xq.Static, st *fragment.Store, ids []int) (map[int][]*xmldom.Node, error) {
	resolveCharged := func(id int) []*xmldom.Node {
		els, hit := static.Cache.GetFillers(st, id, static.Now)
		static.Stats.AddHoles(1)
		if hit {
			static.Stats.AddCacheHits(1)
		} else {
			if static.Cache != nil {
				static.Stats.AddCacheMisses(1)
			}
			static.Stats.AddFillers(st.LookupCost(len(els)))
		}
		return els
	}
	if static.Parallelism > 1 && len(ids) > 1 {
		resolve := func(id int) []*xmldom.Node {
			// MustStep: workers cannot return errors; the pool re-raises
			// the budget panic on the caller, where eval() contains it
			static.Budget.MustStep()
			return resolveCharged(id)
		}
		return temporal.ResolveIDs(ids, resolve, static.Parallelism, static.Wait, static.Stats), nil
	}
	memo := make(map[int][]*xmldom.Node, len(ids))
	for _, id := range ids {
		if err := static.Budget.Step(); err != nil {
			return nil, err
		}
		memo[id] = resolveCharged(id)
	}
	return memo, nil
}

// intrFillersBatch is the QaC+ flavour of get_fillers: it collects every
// matching hole id across the input nodes and resolves the whole set in
// one pass over the store (the unnested/join get_fillers of §8).
func (rt *Runtime) intrFillersBatch(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("xcql: %s wants (nodes, stream, tsid)", fnFillersB)
	}
	st, err := rt.storeOrErr(argString(args, 1))
	if err != nil {
		return nil, err
	}
	if len(args[2]) == 0 {
		return nil, fmt.Errorf("xcql: empty tsid argument")
	}
	tsid := int(xq.NumberValue(args[2][0]))
	var ids []int
	seen := make(map[int]bool)
	var out xq.Sequence
	for _, n := range xq.Nodes(args[0]) {
		holeIDs := fragment.HoleIDs(n, tsid)
		if len(holeIDs) == 0 {
			// materialized input: versions sit inline (see intrFillers)
			if tag := st.Structure().ByID(tsid); tag != nil {
				for _, c := range n.ChildElements(tag.Name) {
					out = append(out, c)
				}
			}
			continue
		}
		for _, id := range holeIDs {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	if len(ids) > 0 {
		// the whole id set resolves in ONE pass over the store — the
		// unnested get_fillers of §8 that separates QaC+ from QaC. With a
		// cache, resident ids are served from memory and only the misses
		// share that one pass (Cache.GetFillersList); scanned is then the
		// miss pass's cost, or the full pass on a nil cache.
		cache := ctx.Static.Cache
		els, hits, misses, scanned := cache.GetFillersList(st, ids, ctx.Static.Now)
		ctx.Static.Stats.AddHoles(len(ids))
		ctx.Static.Stats.AddFillers(scanned)
		if cache != nil {
			ctx.Static.Stats.AddCacheHits(hits)
			ctx.Static.Stats.AddCacheMisses(misses)
		}
		for _, el := range els {
			out = append(out, el)
		}
	}
	if err := chargeNodes(ctx.Static.Budget, out); err != nil {
		return nil, err
	}
	return out, nil
}

// intrByTSID is the QaC+ access path: all filler versions whose tsid is in
// the given set, fetched straight from the tsid index (one predicate scan
// in the paper's cost model) without touching any other document level.
func (rt *Runtime) intrByTSID(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("xcql: %s wants (stream, tsid…)", fnByTSID)
	}
	st, err := rt.storeOrErr(argString(args, 0))
	if err != nil {
		return nil, err
	}
	var out xq.Sequence
	for _, a := range args[1:] {
		if len(a) == 0 {
			continue
		}
		tsid := int(xq.NumberValue(a[0]))
		cache := ctx.Static.Cache
		els, hit := cache.GetFillersByTSID(st, tsid, ctx.Static.Now)
		ctx.Static.Stats.AddTSIDLookup(len(els))
		if hit {
			ctx.Static.Stats.AddCacheHits(1)
		} else {
			if cache != nil {
				ctx.Static.Stats.AddCacheMisses(1)
			}
			ctx.Static.Stats.AddFillers(st.LookupCost(len(els)))
		}
		for _, el := range els {
			out = append(out, el)
		}
	}
	if err := chargeNodes(ctx.Static.Budget, out); err != nil {
		return nil, err
	}
	return out, nil
}

// intrLabelKids is the QaC++ flavour of the batched get_fillers: the
// whole hole-id set of a child step is answered from the label index in
// input order — identical output to intrFillersBatch, zero log scans,
// zero holes resolved. The batch charges one label-range lookup.
func (rt *Runtime) intrLabelKids(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("xcql: %s wants (nodes, stream, tsid)", fnLabelKids)
	}
	st, err := rt.storeOrErr(argString(args, 1))
	if err != nil {
		return nil, err
	}
	if len(args[2]) == 0 {
		return nil, fmt.Errorf("xcql: empty tsid argument")
	}
	tsid := int(xq.NumberValue(args[2][0]))
	var ids []int
	seen := make(map[int]bool)
	var out xq.Sequence
	for _, n := range xq.Nodes(args[0]) {
		holeIDs := fragment.HoleIDs(n, tsid)
		if len(holeIDs) == 0 {
			// materialized input: versions sit inline (see intrFillers)
			if tag := st.Structure().ByID(tsid); tag != nil {
				for _, c := range n.ChildElements(tag.Name) {
					out = append(out, c)
				}
			}
			continue
		}
		for _, id := range holeIDs {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	if len(ids) > 0 {
		els := st.Labels().FillersList(ids, ctx.Static.Now)
		ctx.Static.Stats.AddLabelRangeLookup(len(els))
		for _, el := range els {
			out = append(out, el)
		}
	}
	if err := chargeNodes(ctx.Static.Budget, out); err != nil {
		return nil, err
	}
	return out, nil
}

// intrByLabel is the QaC++ whole-stream descendant access: all filler
// versions under the given tsids, grouped by filler id ascending —
// byte-identical to intrByTSID — served from the label index with zero
// log scans.
func (rt *Runtime) intrByLabel(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("xcql: %s wants (stream, tsid…)", fnByLabel)
	}
	st, err := rt.storeOrErr(argString(args, 0))
	if err != nil {
		return nil, err
	}
	idx := st.Labels()
	var out xq.Sequence
	for _, a := range args[1:] {
		if len(a) == 0 {
			continue
		}
		tsid := int(xq.NumberValue(a[0]))
		els := idx.FillersByTSID(tsid, ctx.Static.Now)
		ctx.Static.Stats.AddLabelRangeLookup(len(els))
		for _, el := range els {
			out = append(out, el)
		}
	}
	if err := chargeNodes(ctx.Static.Budget, out); err != nil {
		return nil, err
	}
	return out, nil
}

func (rt *Runtime) intrIProj(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	return rt.iproj(ctx, args, false)
}

// intrIProjLabeled is the QaC++ interval projection: hole crossing
// during clipping resolves through the label index.
func (rt *Runtime) intrIProjLabeled(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	return rt.iproj(ctx, args, true)
}

// projResolver picks the hole resolver a projection intrinsic slices
// with: the observed store resolver (one log pass per hole), or the
// label-index resolver under QaC++.
func projResolver(st *fragment.Store, at time.Time, s *obs.EvalStats, b *budget.Budget, labeled bool) temporal.HoleResolver {
	if labeled {
		return temporal.BudgetResolver(b, temporal.LabelResolver(st.Labels(), at, s))
	}
	return temporal.BudgetResolver(b, temporal.ObservedStoreResolver(st, at, s))
}

func (rt *Runtime) iproj(ctx *xq.Context, args []xq.Sequence, labeled bool) (xq.Sequence, error) {
	if len(args) != 4 {
		return nil, fmt.Errorf("xcql: %s wants (nodes, tb, te, stream)", fnIProj)
	}
	st, err := rt.storeOrErr(argString(args, 3))
	if err != nil {
		return nil, err
	}
	from, ok := endpointDateTime(args[1])
	if !ok {
		return nil, fmt.Errorf("xcql: interval start is not a dateTime")
	}
	to, ok := endpointDateTime(args[2])
	if !ok {
		return nil, fmt.Errorf("xcql: interval end is not a dateTime")
	}
	window := xtime.NewInterval(from, to)
	at := ctx.Static.Now
	nodes := xq.Nodes(args[0])
	resolve := projResolver(st, at, ctx.Static.Stats, ctx.Static.Budget, labeled)
	out := xq.FromNodes(temporal.IntervalProjection(nodes, window, at, resolve))
	if err := ctx.Static.Budget.AddItems(len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

func endpointDateTime(seq xq.Sequence) (xtime.DateTime, bool) {
	if len(seq) == 0 {
		return xtime.DateTime{}, false
	}
	return xq.DateTimeValue(xq.Atomize(seq)[0])
}

func (rt *Runtime) intrVProj(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	return rt.vproj(ctx, args, false)
}

// intrVProjLabeled is the QaC++ version projection: hole crossing
// during version slicing resolves through the label index.
func (rt *Runtime) intrVProjLabeled(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	return rt.vproj(ctx, args, true)
}

func (rt *Runtime) vproj(ctx *xq.Context, args []xq.Sequence, labeled bool) (xq.Sequence, error) {
	if len(args) != 4 {
		return nil, fmt.Errorf("xcql: %s wants (nodes, vb, ve, stream)", fnVProj)
	}
	st, err := rt.storeOrErr(argString(args, 3))
	if err != nil {
		return nil, err
	}
	window := xtime.VersionInterval{}
	var ok bool
	window.From, window.FromLast, ok = endpointVersion(args[1])
	if !ok {
		return nil, fmt.Errorf("xcql: version start is not a number")
	}
	window.To, window.ToLast, ok = endpointVersion(args[2])
	if !ok {
		return nil, fmt.Errorf("xcql: version end is not a number")
	}
	at := ctx.Static.Now
	nodes := xq.Nodes(args[0])
	resolve := projResolver(st, at, ctx.Static.Stats, ctx.Static.Budget, labeled)
	out := xq.FromNodes(temporal.VersionProjection(nodes, window, at, resolve))
	if err := ctx.Static.Budget.AddItems(len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

func endpointVersion(seq xq.Sequence) (n int, last, ok bool) {
	if len(seq) == 0 {
		return 0, false, false
	}
	it := xq.Atomize(seq)[0]
	if s, isStr := it.(string); isStr && s == "last" {
		return 0, true, true
	}
	f := xq.NumberValue(it)
	if math.IsNaN(f) {
		return 0, false, false
	}
	return int(f), false, true
}

// materializeResult resolves any holes left in result nodes (the final
// Materialize of Figure 2) so every caller sees hole-free temporal XML.
// The resolver charges the budget, so an attack that hides its bulk
// behind holes in the result still trips mid-materialization (the panic
// is contained by Query.eval).
//
// With Parallelism > 1, the transitive hole closure of every holed
// result item is prefetched on the worker pool first (phase A) and the
// sequential fill below reads the memo (phase B), so the output stays
// byte-identical to sequential materialization. The memo resolves each
// id once for the whole result; the sequential path deliberately keeps
// its one-seen-map-per-item charging (the pre-existing behaviour), so
// budget/stats totals — not results — may differ between the two.
// Under QaCPlusPlus the resolver is the label resolver and — because
// every result item fills independently (each item carries its own
// seen map) while the output order is fixed by the items' positions,
// which the labels already determined — the per-item assembly itself
// runs on the worker pool when Parallelism allows. This is the
// label-ordered parallel assembly PR 5 deliberately kept sequential:
// without labels, output order was only derivable by walking holes.
func (rt *Runtime) materializeResult(seq xq.Sequence, static *xq.Static, mode Mode) xq.Sequence {
	s := static.Stats
	if mode == QaCPlusPlus {
		resolver := temporal.BudgetResolver(static.Budget, rt.labelResolver(static.Now, s))
		out := make(xq.Sequence, len(seq))
		fill := func(i int) {
			it := seq[i]
			if n, ok := it.(*xmldom.Node); ok && hasHoles(n) {
				out[i] = fillHoles(n, resolver, make(map[int]bool), s)
			} else {
				out[i] = it
			}
		}
		if static.Parallelism > 1 && len(seq) > 1 {
			temporal.AssembleParallel(len(seq), static.Parallelism, fill, static.Wait, s)
		} else {
			for i := range seq {
				fill(i)
			}
		}
		return out
	}
	resolver := temporal.BudgetResolver(static.Budget, rt.combinedResolver(static.Now, s, static.Cache))
	if static.Parallelism > 1 {
		var holed []*xmldom.Node
		for _, it := range seq {
			if n, ok := it.(*xmldom.Node); ok && hasHoles(n) {
				holed = append(holed, n)
			}
		}
		resolver = temporal.Prefetch(holed, resolver, static.Parallelism, static.Wait, s)
	}
	out := make(xq.Sequence, 0, len(seq))
	for _, it := range seq {
		n, ok := it.(*xmldom.Node)
		if !ok || !hasHoles(n) {
			out = append(out, it)
			continue
		}
		out = append(out, fillHoles(n, resolver, make(map[int]bool), s))
	}
	return out
}

func hasHoles(n *xmldom.Node) bool {
	found := false
	n.Walk(func(m *xmldom.Node) bool {
		if fragment.IsHole(m) {
			found = true
		}
		return !found
	})
	return found
}

// fillHoles returns a copy of n with every hole replaced by its fillers'
// versions, recursively, resolving each filler id once (Temporalize's
// rule).
func fillHoles(n *xmldom.Node, resolve temporal.HoleResolver, seen map[int]bool, s *obs.EvalStats) *xmldom.Node {
	s.AddNodes(1)
	out := xmldom.NewElement(n.Name)
	out.Attrs = append(out.Attrs, n.Attrs...)
	for _, c := range n.Children {
		if c.Type != xmldom.ElementNode {
			out.AppendChild(&xmldom.Node{Type: c.Type, Name: c.Name, Data: c.Data})
			continue
		}
		if fragment.IsHole(c) {
			id, err := fragment.HoleID(c)
			if err != nil || seen[id] {
				continue
			}
			seen[id] = true
			for _, filler := range resolve(id) {
				out.AppendChild(fillHoles(filler, resolve, seen, s))
			}
			continue
		}
		out.AppendChild(fillHoles(c, resolve, seen, s))
	}
	return out
}
