package xcql

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"time"

	"xcql/internal/budget"
	"xcql/internal/fragment"
	"xcql/internal/obs"
	"xcql/internal/tagstruct"
	"xcql/internal/temporal"
	"xcql/internal/xmldom"
	"xcql/internal/xq"
	"xcql/internal/xtime"
)

// Runtime ties the compiler to live fragment stores: it registers named
// streams, compiles XCQL queries under a chosen plan, and supplies the
// intrinsic functions the translated plans call.
type Runtime struct {
	mu     sync.RWMutex
	stores map[string]*fragment.Store
	funcs  map[string]xq.Func
	docs   map[string]*xmldom.Node

	// admission control: maxEvals > 0 bounds concurrent evaluations;
	// excess attempts are rejected with *OverloadError instead of
	// queuing unboundedly.
	maxEvals    int
	activeEvals int

	// trace is the optional span sink: nil (the default) disables
	// tracing entirely, and the disabled path neither allocates nor
	// reads the clock beyond the always-on phase timings.
	trace obs.TraceSink
}

// NewRuntime returns an empty runtime.
func NewRuntime() *Runtime {
	return &Runtime{
		stores: make(map[string]*fragment.Store),
		funcs:  make(map[string]xq.Func),
		docs:   make(map[string]*xmldom.Node),
	}
}

// RegisterStream makes a fragment store queryable as stream(name).
func (rt *Runtime) RegisterStream(name string, store *fragment.Store) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.stores[name] = store
}

// Store returns the store registered under name, or nil.
func (rt *Runtime) Store(name string) *fragment.Store {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.stores[name]
}

// RegisterFunc registers a user function (e.g. the paper's triangulate
// and distance helpers) callable from queries.
func (rt *Runtime) RegisterFunc(name string, f xq.Func) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.funcs[name] = f
}

// RegisterDoc makes a static document available to doc(uri).
func (rt *Runtime) RegisterDoc(uri string, doc *xmldom.Node) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.docs[uri] = doc
}

// Structures snapshots the tag structures of all registered streams.
func (rt *Runtime) Structures() map[string]*tagstruct.Structure {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make(map[string]*tagstruct.Structure, len(rt.stores))
	for name, st := range rt.stores {
		out[name] = st.Structure()
	}
	return out
}

// SetMaxConcurrentEvals bounds the number of evaluations the runtime
// admits at once (n <= 0 means unlimited, the default). When the bound
// is reached, further Eval/EvalContext calls fail fast with an
// *OverloadError — explicit load shedding instead of unbounded queuing.
func (rt *Runtime) SetMaxConcurrentEvals(n int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if n < 0 {
		n = 0
	}
	rt.maxEvals = n
}

// ActiveEvals reports the number of evaluations currently running.
func (rt *Runtime) ActiveEvals() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.activeEvals
}

func (rt *Runtime) admit() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.maxEvals > 0 && rt.activeEvals >= rt.maxEvals {
		return &OverloadError{Active: rt.activeEvals, Max: rt.maxEvals}
	}
	rt.activeEvals++
	return nil
}

func (rt *Runtime) release() {
	rt.mu.Lock()
	rt.activeEvals--
	rt.mu.Unlock()
}

// SetTraceSink installs (or, with nil, removes) the span sink that
// receives parse/translate/execute/materialize trace events for every
// compile and evaluation on this runtime.
func (rt *Runtime) SetTraceSink(s obs.TraceSink) {
	rt.mu.Lock()
	rt.trace = s
	rt.mu.Unlock()
}

func (rt *Runtime) traceSink() obs.TraceSink {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.trace
}

// Query is a compiled XCQL query bound to a runtime.
type Query struct {
	rt     *Runtime
	Mode   Mode
	Source string
	// AST is the parsed, untranslated query.
	AST xq.Expr
	// Plan is the translated engine expression actually evaluated.
	Plan xq.Expr
	// Limits bounds every evaluation of this query: steps, recursion
	// depth, cardinality, bytes and wall time. The zero value is
	// unlimited except for the recursion-depth default. Set it before
	// sharing the query across goroutines.
	Limits Limits

	// compile-phase wall times, copied into every evaluation's stats.
	parseTime     time.Duration
	translateTime time.Duration

	statsMu   sync.Mutex
	lastStats *obs.EvalStats
}

// LastStats returns a snapshot of the cost counters from the most recent
// evaluation of this query (last-writer-wins under concurrent use). The
// zero value is returned before the first evaluation. Stats are recorded
// even when the evaluation failed, so a budget trip still shows how far
// it got.
func (q *Query) LastStats() obs.EvalStats {
	q.statsMu.Lock()
	defer q.statsMu.Unlock()
	if q.lastStats == nil {
		return obs.EvalStats{}
	}
	return *q.lastStats
}

func (q *Query) storeStats(s *obs.EvalStats) {
	q.statsMu.Lock()
	q.lastStats = s
	q.statsMu.Unlock()
}

// Compile parses src and translates it for the given mode against the
// streams currently registered.
func (rt *Runtime) Compile(src string, mode Mode) (*Query, error) {
	parseStart := time.Now()
	ast, err := xq.Parse(src)
	parseTime := time.Since(parseStart)
	if err != nil {
		return nil, err
	}
	trStart := time.Now()
	plan, err := Compile(ast, mode, rt.Structures())
	translateTime := time.Since(trStart)
	if err != nil {
		return nil, err
	}
	if sink := rt.traceSink(); sink != nil {
		sink.Span("parse", src, parseStart, parseTime)
		sink.Span("translate", mode.String(), trStart, translateTime)
	}
	return &Query{
		rt: rt, Mode: mode, Source: src, AST: ast, Plan: plan,
		parseTime: parseTime, translateTime: translateTime,
	}, nil
}

// MustCompile compiles or panics; for tests and examples.
func (rt *Runtime) MustCompile(src string, mode Mode) *Query {
	q, err := rt.Compile(src, mode)
	if err != nil {
		panic(err)
	}
	return q
}

// Eval runs the plan at the evaluation instant and materializes the
// result: holes remaining in returned fragments are resolved (the final
// Materialize step of Figure 2), so callers always see the temporal view.
func (q *Query) Eval(at time.Time) (xq.Sequence, error) {
	return q.eval(context.Background(), at, q.Limits, true)
}

// EvalContext is Eval under a context: cancelling ctx aborts the
// evaluation cooperatively (the evaluator polls between steps), and the
// query's Limits are enforced. Limit trips, cancellation and evaluator
// panics all surface as a structured *EvalError carrying the query text
// and wrapping the *budget.ResourceError (or panic) that caused it; the
// engine, its stores and other queries remain fully usable afterwards.
func (q *Query) EvalContext(ctx context.Context, at time.Time) (xq.Sequence, error) {
	return q.eval(ctx, at, q.Limits, true)
}

// EvalLimits is EvalContext with explicit limits overriding q.Limits
// for this evaluation only.
func (q *Query) EvalLimits(ctx context.Context, at time.Time, lim Limits) (xq.Sequence, error) {
	return q.eval(ctx, at, lim, true)
}

// EvalRaw runs the plan without the final materialization; benchmarks use
// it to time pure plan execution, and callers that re-fragment results
// want the holes kept.
func (q *Query) EvalRaw(at time.Time) (xq.Sequence, error) {
	return q.eval(context.Background(), at, q.Limits, false)
}

// EvalRawContext is EvalRaw under a context and the query's Limits.
func (q *Query) EvalRawContext(ctx context.Context, at time.Time) (xq.Sequence, error) {
	return q.eval(ctx, at, q.Limits, false)
}

// eval is the engine boundary: admission control, budget construction,
// plan evaluation, result materialization, and panic containment. Any
// panic escaping the evaluator — a budget trip from a non-error-returning
// walk, or a genuine bug — is converted into an *EvalError here instead
// of killing the process and every attached continuous query.
func (q *Query) eval(ctx context.Context, at time.Time, lim Limits, materialize bool) (seq xq.Sequence, err error) {
	if err := q.rt.admit(); err != nil {
		return nil, err
	}
	defer q.rt.release()
	stats := &obs.EvalStats{
		Plan:          q.Mode.String(),
		ParseTime:     q.parseTime,
		TranslateTime: q.translateTime,
	}
	sink := q.rt.traceSink()
	b := budget.New(ctx, lim)
	static := q.rt.newStatic(at, b, stats)
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			seq = nil
			if re, ok := p.(*budget.ResourceError); ok {
				err = &EvalError{Query: q.Source, Mode: q.Mode, Err: re}
			} else {
				err = &EvalError{
					Query: q.Source,
					Mode:  q.Mode,
					Err:   fmt.Errorf("panic: %v", p),
					Stack: debug.Stack(),
				}
			}
		}
		// stats are recorded even on failure: a tripped budget still
		// shows how far the evaluation got before it was cut off.
		stats.Steps, stats.Items, stats.BytesMaterialized = b.Used()
		stats.TotalTime = time.Since(start)
		q.storeStats(stats)
		if sink != nil {
			sink.Span("eval", q.Mode.String(), start, stats.TotalTime)
		}
	}()
	execStart := time.Now()
	seq, err = xq.Eval(q.Plan, xq.NewContext(static))
	stats.ExecTime = time.Since(execStart)
	if sink != nil {
		sink.Span("execute", q.Mode.String(), execStart, stats.ExecTime)
	}
	if err != nil {
		return nil, q.wrapResource(err)
	}
	if materialize {
		matStart := time.Now()
		seq = q.rt.materializeResult(seq, at, b, stats)
		stats.MaterializeTime = time.Since(matStart)
		if sink != nil {
			sink.Span("materialize", q.Mode.String(), matStart, stats.MaterializeTime)
		}
	}
	return seq, nil
}

// wrapResource dresses resource-limit errors in the *EvalError envelope
// (query text + plan); other evaluation errors pass through untouched.
func (q *Query) wrapResource(err error) error {
	var re *budget.ResourceError
	if errors.As(err, &re) {
		return &EvalError{Query: q.Source, Mode: q.Mode, Err: err}
	}
	return err
}

// newStatic assembles the evaluation environment: intrinsics, user
// functions, the resolvers, and the evaluation's resource budget.
func (rt *Runtime) newStatic(at time.Time, b *budget.Budget, s *obs.EvalStats) *xq.Static {
	funcs := map[string]xq.Func{
		fnView:     rt.intrView,
		fnRoot:     rt.intrRoot,
		fnFillers:  rt.intrFillers,
		fnFillersB: rt.intrFillersBatch,
		fnByTSID:   rt.intrByTSID,
		fnIProj:    rt.intrIProj,
		fnVProj:    rt.intrVProj,
	}
	rt.mu.RLock()
	for name, f := range rt.funcs {
		funcs[name] = f
	}
	rt.mu.RUnlock()
	return &xq.Static{
		Now:   at,
		Funcs: funcs,
		Stream: func(name string) (xq.Sequence, error) {
			// uncompiled stream() access sees the materialized view
			return rt.intrViewNamed(name, at, b, s)
		},
		Doc: func(uri string) (*xmldom.Node, error) {
			rt.mu.RLock()
			defer rt.mu.RUnlock()
			if d, ok := rt.docs[uri]; ok {
				return d, nil
			}
			return nil, fmt.Errorf("xcql: unknown document %q", uri)
		},
		Holes:  temporal.BudgetResolver(b, rt.combinedResolver(at, s)),
		Budget: b,
		Stats:  s,
	}
}

// combinedResolver resolves hole ids across all registered stores; filler
// ids are unique within a stream, and servers are expected to keep id
// spaces disjoint across streams they co-publish (ours do). Each store
// tried counts as one lookup pass in the stats (nil s collects nothing).
func (rt *Runtime) combinedResolver(at time.Time, s *obs.EvalStats) temporal.HoleResolver {
	return func(holeID int) []*xmldom.Node {
		s.AddHoles(1)
		rt.mu.RLock()
		defer rt.mu.RUnlock()
		for _, st := range rt.stores {
			els := st.GetFillers(holeID, at)
			s.AddFillers(st.LookupCost(len(els)))
			if len(els) > 0 {
				return els
			}
		}
		return nil
	}
}

func (rt *Runtime) storeOrErr(name string) (*fragment.Store, error) {
	st := rt.Store(name)
	if st == nil {
		return nil, fmt.Errorf("xcql: stream %q is not registered", name)
	}
	return st, nil
}

// --- intrinsics -----------------------------------------------------------

func argString(args []xq.Sequence, i int) string {
	if i >= len(args) || len(args[i]) == 0 {
		return ""
	}
	return xq.StringValue(args[i][0])
}

// chargeNodes meters the output of a store walk (get_fillers and the
// tsid scan): cardinality plus the tree bytes of every resolved filler
// version. This is what bounds the QaC/QaC+ access paths.
func chargeNodes(b *budget.Budget, seq xq.Sequence) error {
	if b == nil {
		return nil
	}
	if err := b.AddItems(len(seq)); err != nil {
		return err
	}
	var n int64
	for _, it := range seq {
		if nd, ok := it.(*xmldom.Node); ok {
			n += int64(nd.TreeSize())
		}
	}
	return b.AddBytes(n)
}

func (rt *Runtime) intrViewNamed(name string, at time.Time, b *budget.Budget, s *obs.EvalStats) (xq.Sequence, error) {
	st, err := rt.storeOrErr(name)
	if err != nil {
		return nil, err
	}
	// CaQ's whole-document materialization is metered: an oversized view
	// aborts mid-reconstruction instead of exhausting memory first
	view, err := temporal.TemporalizeObserved(st, at, b, s)
	if err != nil {
		return nil, err
	}
	doc := xmldom.NewDocument()
	doc.AppendChild(view)
	return xq.Singleton(doc), nil
}

func (rt *Runtime) intrView(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	return rt.intrViewNamed(argString(args, 0), ctx.Static.Now, ctx.Static.Budget, ctx.Static.Stats)
}

func (rt *Runtime) intrRoot(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	st, err := rt.storeOrErr(argString(args, 0))
	if err != nil {
		return nil, err
	}
	els := st.GetFillers(fragment.RootFillerID, ctx.Static.Now)
	ctx.Static.Stats.AddFillers(st.LookupCost(len(els)))
	if len(els) == 0 {
		return nil, nil
	}
	// only the current version of the root document is the stream's face
	doc := xmldom.NewDocument()
	doc.AppendChild(els[len(els)-1])
	return xq.Singleton(doc), nil
}

// intrFillers is get_fillers of §5: for every hole with the given tsid in
// the input nodes, return the versions of its fillers.
func (rt *Runtime) intrFillers(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("xcql: %s wants (nodes, stream, tsid)", fnFillers)
	}
	st, err := rt.storeOrErr(argString(args, 1))
	if err != nil {
		return nil, err
	}
	if len(args[2]) == 0 {
		return nil, fmt.Errorf("xcql: empty tsid argument")
	}
	tsid := int(xq.NumberValue(args[2][0]))
	var out xq.Sequence
	// resolve each filler id once per call: several versions of the same
	// container carry the same holes, and a child is one element, not one
	// element per parent version (matches Temporalize's rule)
	resolved := make(map[int]bool)
	for _, n := range xq.Nodes(args[0]) {
		ids := fragment.HoleIDs(n, tsid)
		if len(ids) == 0 {
			// The node may already be materialized (e.g. the output of an
			// interval projection, which resolves holes while clipping);
			// the versions then sit inline as name-matched children.
			if tag := st.Structure().ByID(tsid); tag != nil {
				for _, c := range n.ChildElements(tag.Name) {
					out = append(out, c)
				}
			}
			continue
		}
		for _, id := range ids {
			if resolved[id] {
				continue
			}
			resolved[id] = true
			if err := ctx.Static.Budget.Step(); err != nil {
				return nil, err
			}
			// one store pass per hole id: this is the per-hole cost the
			// QaC plan pays and the batched QaC+ flavour avoids
			els := st.GetFillers(id, ctx.Static.Now)
			ctx.Static.Stats.AddHoles(1)
			ctx.Static.Stats.AddFillers(st.LookupCost(len(els)))
			for _, el := range els {
				out = append(out, el)
			}
		}
	}
	if err := chargeNodes(ctx.Static.Budget, out); err != nil {
		return nil, err
	}
	return out, nil
}

// intrFillersBatch is the QaC+ flavour of get_fillers: it collects every
// matching hole id across the input nodes and resolves the whole set in
// one pass over the store (the unnested/join get_fillers of §8).
func (rt *Runtime) intrFillersBatch(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	if len(args) != 3 {
		return nil, fmt.Errorf("xcql: %s wants (nodes, stream, tsid)", fnFillersB)
	}
	st, err := rt.storeOrErr(argString(args, 1))
	if err != nil {
		return nil, err
	}
	if len(args[2]) == 0 {
		return nil, fmt.Errorf("xcql: empty tsid argument")
	}
	tsid := int(xq.NumberValue(args[2][0]))
	var ids []int
	seen := make(map[int]bool)
	var out xq.Sequence
	for _, n := range xq.Nodes(args[0]) {
		holeIDs := fragment.HoleIDs(n, tsid)
		if len(holeIDs) == 0 {
			// materialized input: versions sit inline (see intrFillers)
			if tag := st.Structure().ByID(tsid); tag != nil {
				for _, c := range n.ChildElements(tag.Name) {
					out = append(out, c)
				}
			}
			continue
		}
		for _, id := range holeIDs {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	if len(ids) > 0 {
		// the whole id set resolves in ONE pass over the store — the
		// unnested get_fillers of §8 that separates QaC+ from QaC
		els := st.GetFillersList(ids, ctx.Static.Now)
		ctx.Static.Stats.AddHoles(len(ids))
		ctx.Static.Stats.AddFillers(st.LookupCost(len(els)))
		for _, el := range els {
			out = append(out, el)
		}
	}
	if err := chargeNodes(ctx.Static.Budget, out); err != nil {
		return nil, err
	}
	return out, nil
}

// intrByTSID is the QaC+ access path: all filler versions whose tsid is in
// the given set, fetched straight from the tsid index (one predicate scan
// in the paper's cost model) without touching any other document level.
func (rt *Runtime) intrByTSID(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("xcql: %s wants (stream, tsid…)", fnByTSID)
	}
	st, err := rt.storeOrErr(argString(args, 0))
	if err != nil {
		return nil, err
	}
	var out xq.Sequence
	for _, a := range args[1:] {
		if len(a) == 0 {
			continue
		}
		tsid := int(xq.NumberValue(a[0]))
		els := st.GetFillersByTSID(tsid, ctx.Static.Now)
		ctx.Static.Stats.AddTSIDLookup(len(els))
		ctx.Static.Stats.AddFillers(st.LookupCost(len(els)))
		for _, el := range els {
			out = append(out, el)
		}
	}
	if err := chargeNodes(ctx.Static.Budget, out); err != nil {
		return nil, err
	}
	return out, nil
}

func (rt *Runtime) intrIProj(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	if len(args) != 4 {
		return nil, fmt.Errorf("xcql: %s wants (nodes, tb, te, stream)", fnIProj)
	}
	st, err := rt.storeOrErr(argString(args, 3))
	if err != nil {
		return nil, err
	}
	from, ok := endpointDateTime(args[1])
	if !ok {
		return nil, fmt.Errorf("xcql: interval start is not a dateTime")
	}
	to, ok := endpointDateTime(args[2])
	if !ok {
		return nil, fmt.Errorf("xcql: interval end is not a dateTime")
	}
	window := xtime.NewInterval(from, to)
	at := ctx.Static.Now
	nodes := xq.Nodes(args[0])
	resolve := temporal.BudgetResolver(ctx.Static.Budget, temporal.ObservedStoreResolver(st, at, ctx.Static.Stats))
	out := xq.FromNodes(temporal.IntervalProjection(nodes, window, at, resolve))
	if err := ctx.Static.Budget.AddItems(len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

func endpointDateTime(seq xq.Sequence) (xtime.DateTime, bool) {
	if len(seq) == 0 {
		return xtime.DateTime{}, false
	}
	return xq.DateTimeValue(xq.Atomize(seq)[0])
}

func (rt *Runtime) intrVProj(ctx *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
	if len(args) != 4 {
		return nil, fmt.Errorf("xcql: %s wants (nodes, vb, ve, stream)", fnVProj)
	}
	st, err := rt.storeOrErr(argString(args, 3))
	if err != nil {
		return nil, err
	}
	window := xtime.VersionInterval{}
	var ok bool
	window.From, window.FromLast, ok = endpointVersion(args[1])
	if !ok {
		return nil, fmt.Errorf("xcql: version start is not a number")
	}
	window.To, window.ToLast, ok = endpointVersion(args[2])
	if !ok {
		return nil, fmt.Errorf("xcql: version end is not a number")
	}
	at := ctx.Static.Now
	nodes := xq.Nodes(args[0])
	resolve := temporal.BudgetResolver(ctx.Static.Budget, temporal.ObservedStoreResolver(st, at, ctx.Static.Stats))
	out := xq.FromNodes(temporal.VersionProjection(nodes, window, at, resolve))
	if err := ctx.Static.Budget.AddItems(len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

func endpointVersion(seq xq.Sequence) (n int, last, ok bool) {
	if len(seq) == 0 {
		return 0, false, false
	}
	it := xq.Atomize(seq)[0]
	if s, isStr := it.(string); isStr && s == "last" {
		return 0, true, true
	}
	f := xq.NumberValue(it)
	if math.IsNaN(f) {
		return 0, false, false
	}
	return int(f), false, true
}

// materializeResult resolves any holes left in result nodes (the final
// Materialize of Figure 2) so every caller sees hole-free temporal XML.
// The resolver charges the budget, so an attack that hides its bulk
// behind holes in the result still trips mid-materialization (the panic
// is contained by Query.eval).
func (rt *Runtime) materializeResult(seq xq.Sequence, at time.Time, b *budget.Budget, s *obs.EvalStats) xq.Sequence {
	resolver := temporal.BudgetResolver(b, rt.combinedResolver(at, s))
	out := make(xq.Sequence, 0, len(seq))
	for _, it := range seq {
		n, ok := it.(*xmldom.Node)
		if !ok || !hasHoles(n) {
			out = append(out, it)
			continue
		}
		out = append(out, fillHoles(n, resolver, make(map[int]bool), s))
	}
	return out
}

func hasHoles(n *xmldom.Node) bool {
	found := false
	n.Walk(func(m *xmldom.Node) bool {
		if fragment.IsHole(m) {
			found = true
		}
		return !found
	})
	return found
}

// fillHoles returns a copy of n with every hole replaced by its fillers'
// versions, recursively, resolving each filler id once (Temporalize's
// rule).
func fillHoles(n *xmldom.Node, resolve temporal.HoleResolver, seen map[int]bool, s *obs.EvalStats) *xmldom.Node {
	s.AddNodes(1)
	out := xmldom.NewElement(n.Name)
	out.Attrs = append(out.Attrs, n.Attrs...)
	for _, c := range n.Children {
		if c.Type != xmldom.ElementNode {
			out.AppendChild(&xmldom.Node{Type: c.Type, Name: c.Name, Data: c.Data})
			continue
		}
		if fragment.IsHole(c) {
			id, err := fragment.HoleID(c)
			if err != nil || seen[id] {
				continue
			}
			seen[id] = true
			for _, filler := range resolve(id) {
				out.AppendChild(fillHoles(filler, resolve, seen, s))
			}
			continue
		}
		out.AppendChild(fillHoles(c, resolve, seen, s))
	}
	return out
}
