package xcql

import (
	"strings"
	"testing"
	"time"

	"xcql/internal/fragment"
	"xcql/internal/tagstruct"
	"xcql/internal/xmldom"
	"xcql/internal/xq"
	"xcql/internal/xtime"
)

const creditWire = `<stream:structure>
<tag type="snapshot" id="1" name="creditAccounts">
  <tag type="temporal" id="2" name="account">
    <tag type="snapshot" id="3" name="customer"/>
    <tag type="temporal" id="4" name="creditLimit"/>
    <tag type="event" id="5" name="transaction">
      <tag type="snapshot" id="6" name="vendor"/>
      <tag type="temporal" id="7" name="status"/>
      <tag type="snapshot" id="8" name="amount"/>
    </tag>
  </tag>
</tag>
</stream:structure>`

var evalAt = time.Date(2003, time.November, 15, 12, 0, 0, 0, time.UTC)

func ts(s string) time.Time {
	t, err := time.Parse(xtime.Layout, s)
	if err != nil {
		panic(err)
	}
	return t.UTC()
}

// buildCreditStore assembles the running example as a stream of arriving
// fragments: the initial document, then event and update fragments,
// including the §4.2 suspension scenario.
func buildCreditStore(t testing.TB) *fragment.Store {
	t.Helper()
	s, err := tagstruct.ParseString(creditWire)
	if err != nil {
		t.Fatal(err)
	}
	st := fragment.NewStore(s)
	add := func(f *fragment.Fragment) {
		t.Helper()
		if err := st.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	el := func(src string) *xmldom.Node { return xmldom.MustParseString(src).Root() }

	// root document: two account holes
	add(fragment.New(fragment.RootFillerID, 1, ts("1998-01-01T00:00:00"),
		el(`<creditAccounts><hole id="1" tsid="2"/><hole id="2" tsid="2"/></creditAccounts>`)))
	// account 1234 with creditLimit and two transaction holes
	add(fragment.New(1, 2, ts("1998-10-10T12:20:22"),
		el(`<account id="1234"><customer>John Smith</customer><hole id="10" tsid="4"/><hole id="11" tsid="5"/><hole id="12" tsid="5"/></account>`)))
	// account 5678
	add(fragment.New(2, 2, ts("2000-01-01T00:00:00"),
		el(`<account id="5678"><customer>Jane Doe</customer><hole id="20" tsid="4"/><hole id="21" tsid="5"/></account>`)))
	// creditLimit versions for account 1234: 2000 then 5000
	add(fragment.New(10, 4, ts("1998-10-10T12:20:22"), el(`<creditLimit>2000</creditLimit>`)))
	add(fragment.New(10, 4, ts("2001-04-23T23:11:08"), el(`<creditLimit>5000</creditLimit>`)))
	// creditLimit for account 5678
	add(fragment.New(20, 4, ts("2000-01-01T00:00:00"), el(`<creditLimit>1000</creditLimit>`)))
	// transaction 12345 (Nov 10) with charged status
	add(fragment.New(11, 5, ts("2003-11-10T12:23:34"),
		el(`<transaction id="12345"><vendor>Southlake Pizza</vendor><amount>3800.20</amount><hole id="100" tsid="7"/></transaction>`)))
	add(fragment.New(100, 7, ts("2003-11-10T12:24:35"), el(`<status>charged</status>`)))
	// transaction 12346 (Sep 10), charged then suspended (fillers 3-5)
	add(fragment.New(12, 5, ts("2003-09-10T14:30:12"),
		el(`<transaction id="12346"><vendor>ResAris Contaceu</vendor><amount>1200</amount><hole id="101" tsid="7"/></transaction>`)))
	add(fragment.New(101, 7, ts("2003-09-10T14:30:13"), el(`<status>charged</status>`)))
	add(fragment.New(101, 7, ts("2003-11-01T10:12:56"), el(`<status>suspended</status>`)))
	// transaction 22222 (Nov 12) on account 5678
	add(fragment.New(21, 5, ts("2003-11-12T09:00:00"),
		el(`<transaction id="22222"><vendor>BookShop</vendor><amount>950</amount><hole id="102" tsid="7"/></transaction>`)))
	add(fragment.New(102, 7, ts("2003-11-12T09:00:01"), el(`<status>charged</status>`)))
	return st
}

func newRuntime(t testing.TB) *Runtime {
	rt := NewRuntime()
	rt.RegisterStream("credit", buildCreditStore(t))
	return rt
}

var allModes = []Mode{CaQ, QaC, QaCPlus, QaCPlusPlus}

// evalAll runs src under all four modes and checks they agree, returning
// the (shared) result rendered as strings.
func evalAll(t *testing.T, rt *Runtime, src string) []string {
	t.Helper()
	var rendered [][]string
	for _, mode := range allModes {
		q, err := rt.Compile(src, mode)
		if err != nil {
			t.Fatalf("%s compile: %v", mode, err)
		}
		seq, err := q.Eval(evalAt)
		if err != nil {
			t.Fatalf("%s eval: %v", mode, err)
		}
		rendered = append(rendered, renderSeq(seq))
	}
	for i, mode := range allModes[1:] {
		if strings.Join(rendered[i+1], "\n") != strings.Join(rendered[0], "\n") {
			t.Fatalf("mode %s disagrees with %s on %q:\n%s: %v\n%s: %v",
				mode, allModes[0], src, allModes[0], rendered[0], mode, rendered[i+1])
		}
	}
	return rendered[0]
}

func renderSeq(seq xq.Sequence) []string {
	out := make([]string, len(seq))
	for i, it := range seq {
		if n, ok := it.(*xmldom.Node); ok {
			out[i] = n.String()
		} else {
			out[i] = xq.StringValue(it)
		}
	}
	return out
}

func TestModeString(t *testing.T) {
	for _, m := range allModes {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("mode round trip %v: %v %v", m, back, err)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestPlanShapes(t *testing.T) {
	rt := newRuntime(t)
	src := `for $t in stream("credit")//transaction where $t/amount > 1000 return $t/amount`

	caq := rt.MustCompile(src, CaQ).Plan.String()
	if !strings.Contains(caq, fnView) || strings.Contains(caq, fnFillers) {
		t.Fatalf("CaQ plan:\n%s", caq)
	}
	qac := rt.MustCompile(src, QaC).Plan.String()
	if !strings.Contains(qac, fnRoot) || !strings.Contains(qac, fnFillers) {
		t.Fatalf("QaC plan:\n%s", qac)
	}
	if strings.Contains(qac, fnByTSID) {
		t.Fatalf("QaC plan must not use the tsid index:\n%s", qac)
	}
	plus := rt.MustCompile(src, QaCPlus).Plan.String()
	if !strings.Contains(plus, fnByTSID) {
		t.Fatalf("QaC+ plan must use the tsid index:\n%s", plus)
	}
	// QaC+ descendant over the whole stream must not chain fillers calls
	if strings.Contains(plus, fnFillers+"("+fnFillers) {
		t.Fatalf("QaC+ should not reconcile intermediate holes:\n%s", plus)
	}
	pp := rt.MustCompile(src, QaCPlusPlus).Plan.String()
	if !strings.Contains(pp, fnByLabel) {
		t.Fatalf("QaC++ plan must use the label index:\n%s", pp)
	}
	for _, banned := range []string{fnByTSID, fnFillersB, fnFillers + "(", fnView} {
		if strings.Contains(pp, banned) {
			t.Fatalf("QaC++ plan must not use %s:\n%s", banned, pp)
		}
	}
}

func TestCompileUnknownStream(t *testing.T) {
	rt := newRuntime(t)
	if _, err := rt.Compile(`stream("nope")//x`, QaC); err == nil {
		t.Fatal("unknown stream should fail at compile time")
	}
}

func TestChildStepAcrossHoles(t *testing.T) {
	rt := newRuntime(t)
	got := evalAll(t, rt, `stream("credit")/creditAccounts/account/customer`)
	if len(got) != 2 {
		t.Fatalf("customers = %v", got)
	}
}

func TestDescendantAcrossHoles(t *testing.T) {
	rt := newRuntime(t)
	got := evalAll(t, rt, `count(stream("credit")//transaction)`)
	if got[0] != "3" {
		t.Fatalf("transactions = %v", got)
	}
	got = evalAll(t, rt, `count(stream("credit")//status)`)
	if got[0] != "4" {
		t.Fatalf("status versions = %v", got)
	}
	// snapshot descendants still work (vendor is embedded in transaction)
	got = evalAll(t, rt, `count(stream("credit")//vendor)`)
	if got[0] != "3" {
		t.Fatalf("vendors = %v", got)
	}
}

func TestExistentialStatusSemantics(t *testing.T) {
	// §6: with plain status = "charged", the suspended transaction 12346
	// still matches (existential over versions)…
	rt := newRuntime(t)
	got := evalAll(t, rt, `for $t in stream("credit")//transaction
		where $t/amount > 1000 and $t/status = "charged"
		return $t/@id`)
	if strings.Join(got, ",") != "12345,12346" {
		t.Fatalf("existential match = %v", got)
	}
	// …while status?[now] sees only the current version and excludes it
	got = evalAll(t, rt, `for $t in stream("credit")//transaction
		where $t/amount > 1000 and $t/status?[now] = "charged"
		return $t/@id`)
	if strings.Join(got, ",") != "12345" {
		t.Fatalf("?[now] match = %v", got)
	}
	// equivalent #[last] form mentioned in §6.1
	got = evalAll(t, rt, `for $t in stream("credit")//transaction
		where $t/amount > 1000 and $t/status#[last] = "charged"
		return $t/@id`)
	if strings.Join(got, ",") != "12345" {
		t.Fatalf("#[last] match = %v", got)
	}
}

func TestPaperQuery1MaxedOutAccounts(t *testing.T) {
	// Query 1 (§3.1): accounts maxed out in November 2003. Account 5678
	// has a 1000 limit and a 950 charge — not maxed. Account 1234 has a
	// 5000 limit and 3800.20 November charge — not maxed. Lower the bar by
	// checking against the definition directly at several thresholds.
	rt := newRuntime(t)
	src := `for $a in stream("credit")//account
	where sum($a/transaction?[2003-11-01,2003-12-01]
	          [status = "charged"]/amount) >= $a/creditLimit?[now]
	return <account>{ attribute id {$a/@id}, $a/customer }</account>`
	got := evalAll(t, rt, src)
	if len(got) != 0 {
		t.Fatalf("no account should be maxed out, got %v", got)
	}
	// with a lower threshold the big spender appears
	src2 := `for $a in stream("credit")//account
	where sum($a/transaction?[2003-11-01,2003-12-01]
	          [status = "charged"]/amount) >= 3000
	return $a/@id`
	got = evalAll(t, rt, src2)
	if strings.Join(got, ",") != "1234" {
		t.Fatalf("november spenders = %v", got)
	}
}

func TestPaperQuery2Fraud(t *testing.T) {
	rt := newRuntime(t)
	src := `for $a in stream("credit")//account
	where sum($a/transaction?[now-PT1H,now][status = "charged"]/amount) >=
	      max(($a/creditLimit?[now] * 0.9, 5000))
	return <alert><account id={$a/@id}>{$a/customer}</account></alert>`
	// nothing within the hour at evalAt
	got := evalAll(t, rt, src)
	if len(got) != 0 {
		t.Fatalf("unexpected alert: %v", got)
	}
	// evaluated just after the 3800.20 charge with a lowered threshold:
	// max(0.5 * 5000, 3000) = 3000 <= 3800.20 triggers the alert
	src3k := strings.Replace(strings.Replace(src, "5000", "3000", 1), "0.9", "0.5", 1)
	for _, mode := range allModes {
		q := rt.MustCompile(src3k, mode)
		seq, err := q.Eval(ts("2003-11-10T12:30:00"))
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(seq) != 1 {
			t.Fatalf("%s: alerts = %d", mode, len(seq))
		}
		alert := seq[0].(*xmldom.Node)
		if alert.Descendants("account")[0].AttrOr("id", "") != "1234" {
			t.Fatalf("%s: alert = %s", mode, alert)
		}
	}
}

func TestVersionWindows(t *testing.T) {
	rt := newRuntime(t)
	got := evalAll(t, rt, `stream("credit")//account[@id = "1234"]/creditLimit#[1]`)
	if len(got) != 1 || !strings.Contains(got[0], "2000") {
		t.Fatalf("#[1] = %v", got)
	}
	got = evalAll(t, rt, `stream("credit")//account[@id = "1234"]/creditLimit#[last]`)
	if len(got) != 1 || !strings.Contains(got[0], "5000") {
		t.Fatalf("#[last] = %v", got)
	}
	got = evalAll(t, rt, `count(stream("credit")//account[@id = "1234"]/creditLimit#[1,10])`)
	if got[0] != "2" {
		t.Fatalf("#[1,10] = %v", got)
	}
}

func TestIntervalWindowAcrossModes(t *testing.T) {
	rt := newRuntime(t)
	// only the November transactions fall in the window
	got := evalAll(t, rt, `count(stream("credit")//transaction?[2003-11-01,2003-12-01])`)
	if got[0] != "2" {
		t.Fatalf("window count = %v", got)
	}
	// lifespans are clipped to the window
	got = evalAll(t, rt, `vtTo(stream("credit")//account[@id = "5678"]?[2003-01-01,2003-06-01])`)
	if got[0] != "2003-06-01T00:00:00" {
		t.Fatalf("clipped vtTo = %v", got)
	}
}

func TestVtFromOnFragmentStream(t *testing.T) {
	rt := newRuntime(t)
	got := evalAll(t, rt, `vtFrom(stream("credit")//transaction[@id = "12345"])`)
	if got[0] != "2003-11-10T12:23:34" {
		t.Fatalf("vtFrom = %v", got)
	}
}

func TestResultMaterialization(t *testing.T) {
	// returning an account in QaC copies its payload, which contains
	// holes; Eval must resolve them (Figure 2's final Materialize)
	rt := newRuntime(t)
	q := rt.MustCompile(`stream("credit")//account[@id = "1234"]`, QaC)
	seq, err := q.Eval(evalAt)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1 {
		t.Fatalf("accounts = %d", len(seq))
	}
	acct := seq[0].(*xmldom.Node)
	if len(acct.Descendants("hole")) != 0 {
		t.Fatalf("holes left in materialized result: %s", acct)
	}
	if len(acct.ChildElements("creditLimit")) != 2 {
		t.Fatalf("creditLimit versions = %s", acct)
	}
	// EvalRaw keeps the holes
	raw, err := q.EvalRaw(evalAt)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw[0].(*xmldom.Node).Descendants("hole")) == 0 {
		t.Fatal("EvalRaw should keep holes")
	}
}

func TestFutureFragmentsInvisible(t *testing.T) {
	rt := newRuntime(t)
	// before the November transactions happened
	at := ts("2003-10-01T00:00:00")
	for _, mode := range allModes {
		q := rt.MustCompile(`count(stream("credit")//transaction)`, mode)
		seq, err := q.Eval(at)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if xq.StringValue(seq[0]) != "1" {
			t.Fatalf("%s: at %v transactions = %v", mode, at, seq[0])
		}
	}
}

func TestWildcardChildAcrossHoles(t *testing.T) {
	rt := newRuntime(t)
	// account/* = customer (snapshot) + creditLimit versions + transactions
	got := evalAll(t, rt, `count(stream("credit")//account[@id = "1234"]/*)`)
	// customer + 2 creditLimit versions + 2 transactions = 5
	if got[0] != "5" {
		t.Fatalf("wildcard = %v", got)
	}
}

func TestUserFunctionsInQueries(t *testing.T) {
	rt := newRuntime(t)
	rt.RegisterFunc("double", func(_ *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
		return xq.Singleton(xq.NumberValue(args[0][0]) * 2), nil
	})
	got := evalAll(t, rt, `double(sum(stream("credit")//transaction/amount))`)
	want := xq.FormatNumber(2 * (3800.20 + 1200 + 950))
	if got[0] != want {
		t.Fatalf("double = %v want %s", got, want)
	}
}

func TestRegisteredDoc(t *testing.T) {
	rt := newRuntime(t)
	rt.RegisterDoc("lookup.xml", xmldom.MustParseString(`<rates><rate vendor="BookShop">0.01</rate></rates>`))
	got := evalAll(t, rt, `doc("lookup.xml")/rates/rate/@vendor`)
	if got[0] != "BookShop" {
		t.Fatalf("doc = %v", got)
	}
}

func TestLateArrivalChangesResult(t *testing.T) {
	// continuous behaviour: a new fragment arriving changes the next
	// evaluation without recompiling
	rt := newRuntime(t)
	st := rt.Store("credit")
	q := rt.MustCompile(`count(stream("credit")//transaction)`, QaCPlus)
	before, err := q.Eval(evalAt)
	if err != nil {
		t.Fatal(err)
	}
	if xq.StringValue(before[0]) != "3" {
		t.Fatalf("before = %v", before[0])
	}
	// a new charge arrives on account 5678 — but its hole is not in the
	// account yet; in the Hole-Filler model an insertion updates the
	// parent fragment with a new hole (§1)
	el := xmldom.MustParseString(`<account id="5678"><customer>Jane Doe</customer><hole id="20" tsid="4"/><hole id="21" tsid="5"/><hole id="22" tsid="5"/></account>`).Root()
	if err := st.Add(fragment.New(2, 2, ts("2003-11-14T00:00:00"), el)); err != nil {
		t.Fatal(err)
	}
	tx := xmldom.MustParseString(`<transaction id="33333"><vendor>CafeX</vendor><amount>12</amount></transaction>`).Root()
	if err := st.Add(fragment.New(22, 5, ts("2003-11-14T00:00:01"), tx)); err != nil {
		t.Fatal(err)
	}
	after, err := q.Eval(evalAt)
	if err != nil {
		t.Fatal(err)
	}
	if xq.StringValue(after[0]) != "4" {
		t.Fatalf("after = %v", after[0])
	}
}
