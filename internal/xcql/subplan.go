package xcql

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"xcql/internal/budget"
	"xcql/internal/fragment"
	"xcql/internal/obs"
	"xcql/internal/xq"
)

// Exported spellings of the intrinsic plan functions, so plan inspectors
// (EXPLAIN, the incremental compiler in internal/inc) can classify the
// access paths of a translated Query.Plan without duplicating the names.
const (
	// FnView is the CaQ access path: materialize the whole temporal view.
	FnView = fnView
	// FnRoot fetches the root filler's payload versions (QaC).
	FnRoot = fnRoot
	// FnFillers crosses holes with one get_fillers pass per hole (QaC).
	FnFillers = fnFillers
	// FnFillersBatch crosses holes in one batched store pass (QaC+).
	FnFillersBatch = fnFillersB
	// FnByTSID jumps straight to every filler with a tsid (QaC+).
	FnByTSID = fnByTSID
	// FnByLabel is the QaC++ label-range scan: every filler with a tsid,
	// served from the prefix-label index.
	FnByLabel = fnByLabel
	// FnLabelKids crosses holes through the label index (QaC++).
	FnLabelKids = fnLabelKids
	// FnIProj is the compiled interval projection e?[t1,t2].
	FnIProj = fnIProj
	// FnVProj is the compiled version projection e#[v1,v2].
	FnVProj = fnVProj
)

// WalkPlan visits every node of a plan (or AST) expression in preorder —
// the EXPLAIN walker, exported so other plan compilers (internal/inc)
// reuse the same traversal instead of growing their own.
func WalkPlan(e xq.Expr, fn func(xq.Expr)) { walkExpr(e, fn) }

// PlanLitString extracts the string literal at args[i] of a plan call, or
// "" — the EXPLAIN argument readers, exported alongside WalkPlan.
func PlanLitString(args []xq.Expr, i int) string { return litString(args, i) }

// PlanLitInt extracts the numeric literal at args[i] of a plan call, or 0.
func PlanLitInt(args []xq.Expr, i int) int { return litInt(args, i) }

// StreamStore returns the fragment store registered under name on this
// query's runtime, or nil. The incremental evaluator uses it to read the
// per-tag access paths (GetFillers / the tsid index) directly.
func (q *Query) StreamStore(name string) *fragment.Store { return q.rt.Store(name) }

// RecordStats publishes s as this query's LastStats. The incremental
// evaluator assembles one EvalStats per fragment arrival out of many
// sub-plan evaluations and records the merged profile here, so
// Query.LastStats and EXPLAIN keep working in incremental mode.
func (q *Query) RecordStats(s *obs.EvalStats) { q.storeStats(s) }

// EvalSubPlan evaluates one sub-expression of this query's plan in a
// fresh environment at the evaluation instant: its own budget built from
// lim, sequential and uncached execution (the pinned baseline strategy,
// byte-identical to every parallel/cached configuration — see
// TestDiffHarness), counters accumulated into stats (nil collects
// nothing). materialize runs the final hole-filling Materialize step on
// the result, exactly as Query.Eval does.
//
// This is the incremental evaluator's workhorse: each partial-match unit
// re-evaluates only its own slice of the plan through the same engine
// code paths as a full evaluation, so unit outputs are byte-identical by
// construction. EvalSubPlan performs no admission control — one fragment
// arrival may evaluate many tiny units and each unit is already
// step/byte/deadline-bounded by lim.
func (q *Query) EvalSubPlan(e xq.Expr, at time.Time, lim Limits, stats *obs.EvalStats, materialize bool) (seq xq.Sequence, err error) {
	b := budget.New(context.Background(), lim)
	static := q.rt.newStatic(at, b, stats, 1, nil, nil, q.Mode)
	defer func() {
		if p := recover(); p != nil {
			seq = nil
			if re, ok := p.(*budget.ResourceError); ok {
				err = &EvalError{Query: q.Source, Mode: q.Mode, Err: re}
			} else {
				err = &EvalError{
					Query: q.Source,
					Mode:  q.Mode,
					Err:   fmt.Errorf("panic: %v", p),
					Stack: debug.Stack(),
				}
			}
		}
	}()
	seq, err = xq.Eval(e, xq.NewContext(static))
	if err != nil {
		return nil, q.wrapResource(err)
	}
	if materialize {
		seq = q.rt.materializeResult(seq, static, q.Mode)
	}
	if stats != nil {
		// Query.eval copies the budget's totals into the stats at the
		// end; sub-plan evaluations instead accumulate, so one arrival's
		// stats sum its unit evaluations.
		steps, items, bytes := b.Used()
		atomic.AddInt64(&stats.Steps, steps)
		atomic.AddInt64(&stats.Items, items)
		atomic.AddInt64(&stats.BytesMaterialized, bytes)
	}
	return seq, nil
}
