package xcql

import (
	"strings"
	"testing"

	"xcql/internal/fragment"
	"xcql/internal/tagstruct"
	"xcql/internal/xmldom"
	"xcql/internal/xq"
)

// Multi-stream coincidence queries (§2): two radar streams joined on
// frequency within a one-second window of each other's events.

const radarWire = `<stream:structure>
<tag type="snapshot" id="1" name="radar">
  <tag type="event" id="2" name="event">
    <tag type="snapshot" id="3" name="frequency"/>
    <tag type="snapshot" id="4" name="angle"/>
  </tag>
</tag>
</stream:structure>`

func radarStore(t *testing.T, events []struct {
	at        string
	freq, ang string
}) *fragment.Store {
	t.Helper()
	s, err := tagstruct.ParseString(radarWire)
	if err != nil {
		t.Fatal(err)
	}
	st := fragment.NewStore(s)
	holes := ""
	for i := range events {
		holes += xmldom.Elem("hole", []xmldom.Attr{{Name: "id", Value: itoa(i + 1)}, {Name: "tsid", Value: "2"}}).String()
	}
	root := xmldom.MustParseString("<radar>" + holes + "</radar>").Root()
	if err := st.Add(fragment.New(fragment.RootFillerID, 1, ts("2003-01-01T00:00:00"), root)); err != nil {
		t.Fatal(err)
	}
	for i, e := range events {
		payload := xmldom.MustParseString(
			"<event><frequency>" + e.freq + "</frequency><angle>" + e.ang + "</angle></event>").Root()
		if err := st.Add(fragment.New(i+1, 2, ts(e.at), payload)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func itoa(n int) string {
	return string(rune('0' + n))
}

func TestCoincidenceJoinAcrossStreams(t *testing.T) {
	rt := NewRuntime()
	rt.RegisterStream("radar1", radarStore(t, []struct{ at, freq, ang string }{
		{"2003-06-01T10:00:00", "101.5", "45"},
		{"2003-06-01T11:00:00", "88.1", "10"},
	}))
	rt.RegisterStream("radar2", radarStore(t, []struct{ at, freq, ang string }{
		{"2003-06-01T10:00:00", "101.5", "135"}, // matches the first radar1 event
		{"2003-06-01T10:30:00", "88.1", "20"},   // right frequency, wrong time
	}))
	rt.RegisterFunc("triangulate", func(_ *xq.Context, args []xq.Sequence) (xq.Sequence, error) {
		return xq.Singleton(xq.StringValue(args[0][0]) + "/" + xq.StringValue(args[1][0])), nil
	})

	// the paper's radar query (§2, example 2)
	src := `for $r in stream("radar1")//event,
	            $s in stream("radar2")//event
	                  ?[vtFrom($r)-PT1S,vtTo($r)+PT1S]
	        where $r/frequency = $s/frequency
	        return <position>{ triangulate($r/angle,$s/angle) }</position>`

	for _, mode := range allModes {
		q, err := rt.Compile(src, mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		seq, err := q.Eval(ts("2003-06-01T12:00:00"))
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(seq) != 1 {
			t.Fatalf("%s: positions = %d (%v)", mode, len(seq), xq.Strings(seq))
		}
		pos := seq[0].(*xmldom.Node)
		if got := pos.TrimmedText(); got != "45/135" {
			t.Fatalf("%s: triangulated = %q", mode, got)
		}
	}
}

func TestMultiStreamPlanKeepsStreamsSeparate(t *testing.T) {
	rt := NewRuntime()
	rt.RegisterStream("radar1", radarStore(t, []struct{ at, freq, ang string }{
		{"2003-06-01T10:00:00", "101.5", "45"},
	}))
	rt.RegisterStream("radar2", radarStore(t, []struct{ at, freq, ang string }{
		{"2003-06-01T10:00:00", "200.0", "1"},
		{"2003-06-01T10:00:01", "200.1", "2"},
	}))
	q := rt.MustCompile(`(count(stream("radar1")//event), count(stream("radar2")//event))`, QaCPlus)
	seq, err := q.Eval(ts("2003-06-01T12:00:00"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(xq.Strings(seq), ","); got != "1,2" {
		t.Fatalf("per-stream counts = %q", got)
	}
	// the plan names both streams
	plan := q.Plan.String()
	if !strings.Contains(plan, `"radar1"`) || !strings.Contains(plan, `"radar2"`) {
		t.Fatalf("plan lost stream identity:\n%s", plan)
	}
}

func TestDeclaredFunctionThroughCompiler(t *testing.T) {
	rt := newRuntime(t)
	src := `declare function totalCharged($txs) {
	          sum($txs[status = "charged"]/amount)
	        };
	        for $a in stream("credit")//account
	        return totalCharged($a/transaction)`
	got := evalAll(t, rt, src)
	// account 1234: 3800.20 + 1200 (both have a charged version);
	// account 5678: 950
	if len(got) != 2 || got[0] != "5000.2" || got[1] != "950" {
		t.Fatalf("totals = %v", got)
	}
}
