package xcql

import (
	"strings"
	"testing"
)

// Explain must name the same plan whose counters LastStats reports, for
// every physical plan, and the access paths must match the plan's shape:
// CaQ materializes, QaC walks get_fillers per hole, QaC+ takes the
// tsid-index shortcut, QaC++ the label-range scan.
func TestExplainMatchesPlanAcrossModes(t *testing.T) {
	const query = `for $t in stream("credit")//transaction return $t/amount`
	wantOps := map[Mode]string{
		CaQ:         "materialize-view",
		QaC:         "get_fillers",
		QaCPlus:     "tsid-index",
		QaCPlusPlus: "label-range",
	}
	for _, mode := range []Mode{CaQ, QaC, QaCPlus, QaCPlusPlus} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := NewRuntime()
			rt.RegisterStream("credit", buildCreditStore(t))
			q := rt.MustCompile(query, mode)

			ex := q.Explain()
			if ex.Plan != mode.String() {
				t.Fatalf("Explain().Plan = %q, want %q", ex.Plan, mode.String())
			}
			if ex.Evaluated {
				t.Fatal("Evaluated = true before any evaluation")
			}
			if len(ex.Streams) != 1 || ex.Streams[0] != "credit" {
				t.Fatalf("Streams = %v", ex.Streams)
			}
			found := false
			for _, tgt := range ex.Targets {
				if tgt.Op == wantOps[mode] {
					found = true
				}
			}
			if !found {
				t.Fatalf("plan %s: no %q target in %v", mode, wantOps[mode], ex.Targets)
			}

			if _, err := q.Eval(evalAt); err != nil {
				t.Fatal(err)
			}
			ex = q.Explain()
			if !ex.Evaluated {
				t.Fatal("Evaluated = false after evaluation")
			}
			// the contract of the acceptance criteria: Explain names the
			// same plan whose counters LastStats reports
			if got := q.LastStats().Plan; ex.Plan != got || ex.Observed.Plan != got {
				t.Fatalf("Explain plan %q / observed %q != LastStats plan %q",
					ex.Plan, ex.Observed.Plan, got)
			}
			if mode == QaCPlusPlus {
				// the reconstruction-free plan: every access is a label
				// index fetch, never a log pass or a hole walk
				if ex.Observed.LabelRangeLookups == 0 {
					t.Fatal("QaC++ observed no label-range lookups")
				}
				if ex.Observed.FillersScanned != 0 || ex.Observed.HolesResolved != 0 {
					t.Fatalf("QaC++ scanned fillers or resolved holes: %+v", ex.Observed)
				}
			} else if ex.Observed.FillersScanned == 0 {
				t.Fatal("observed stats empty after evaluation")
			}
		})
	}
}

// The prediction is a store census: on the indexed store the QaC+
// tsid-index path predicts exactly the versions the index would return,
// and the observed counters of a real run agree.
func TestExplainPredictionTracksStore(t *testing.T) {
	rt := NewRuntime()
	rt.RegisterStream("credit", buildCreditStore(t))
	q := rt.MustCompile(`stream("credit")//transaction`, QaCPlus)

	ex := q.Explain()
	if len(ex.Targets) == 0 {
		t.Fatal("no targets")
	}
	tgt := ex.Targets[0]
	if tgt.Op != "tsid-index" || tgt.TSID != 5 || tgt.Tag != "transaction" {
		t.Fatalf("target = %+v", tgt)
	}
	if tgt.Versions == 0 || tgt.Holes == 0 {
		t.Fatalf("census empty: %+v", tgt)
	}
	if ex.Predicted.TSIDLookups != 1 {
		t.Fatalf("predicted tsid lookups = %d, want 1", ex.Predicted.TSIDLookups)
	}

	if _, err := q.Eval(evalAt); err != nil {
		t.Fatal(err)
	}
	obs := q.LastStats()
	// prediction counts versions ever stored; the observed index fetch
	// returns the ones alive at the evaluation instant — never more
	if obs.TSIDIndexHits > int64(tgt.Versions) {
		t.Errorf("observed hits %d > predicted versions %d", obs.TSIDIndexHits, tgt.Versions)
	}
	if obs.TSIDLookups != ex.Predicted.TSIDLookups {
		t.Errorf("tsid lookups: observed %d, predicted %d", obs.TSIDLookups, ex.Predicted.TSIDLookups)
	}
}

// Under QaC++ the prediction is a label-index census: the label-range
// target predicts the versions the label index holds for the tsid, the
// predicted hits are label-range hits (never filler scans), and the
// observed counters of a real run stay within the census.
func TestExplainPredictionLabelRange(t *testing.T) {
	rt := NewRuntime()
	rt.RegisterStream("credit", buildCreditStore(t))
	q := rt.MustCompile(`stream("credit")//transaction`, QaCPlusPlus)

	ex := q.Explain()
	if len(ex.Targets) == 0 {
		t.Fatal("no targets")
	}
	tgt := ex.Targets[0]
	if tgt.Op != "label-range" || tgt.TSID != 5 || tgt.Tag != "transaction" {
		t.Fatalf("target = %+v", tgt)
	}
	if tgt.Versions == 0 || tgt.Holes == 0 {
		t.Fatalf("census empty: %+v", tgt)
	}
	if ex.Predicted.LabelRangeLookups == 0 {
		t.Fatal("no predicted label-range lookups")
	}
	if ex.Predicted.FillersScanned != 0 || ex.Predicted.HolesResolved != 0 {
		t.Fatalf("QaC++ prediction charges scans or hole walks: %+v", ex.Predicted)
	}

	if _, err := q.Eval(evalAt); err != nil {
		t.Fatal(err)
	}
	obs := q.LastStats()
	// materializing the result crosses the holes inside each transaction
	// through the label index too, so the run observes at least the
	// predicted plan-target fetches and hits
	if obs.LabelRangeHits < ex.Predicted.LabelRangeHits {
		t.Errorf("observed hits %d < predicted hits %d", obs.LabelRangeHits, ex.Predicted.LabelRangeHits)
	}
	if obs.LabelRangeLookups < ex.Predicted.LabelRangeLookups {
		t.Errorf("label lookups: observed %d < predicted %d",
			obs.LabelRangeLookups, ex.Predicted.LabelRangeLookups)
	}
	if obs.FillersScanned != 0 || obs.HolesResolved != 0 || obs.TSIDLookups != 0 {
		t.Errorf("QaC++ run touched non-label access paths: %+v", obs)
	}
}

// An empty runtime still explains: unregistered streams census to zero
// instead of failing.
func TestExplainUnregisteredStream(t *testing.T) {
	rt := NewRuntime()
	rt.RegisterStream("credit", buildCreditStore(t))
	q := rt.MustCompile(`stream("credit")//transaction`, QaC)
	q.rt = NewRuntime() // same plan, no stores behind it anymore
	ex := q.Explain()
	if ex.Plan != "QaC" {
		t.Fatalf("plan = %q", ex.Plan)
	}
	for _, tgt := range ex.Targets {
		if tgt.Versions != 0 || tgt.Holes != 0 || tgt.CostPerPass != 0 {
			t.Errorf("census of unregistered stream not zero: %+v", tgt)
		}
	}
}

func TestExplainString(t *testing.T) {
	rt := NewRuntime()
	rt.RegisterStream("credit", buildCreditStore(t))
	q := rt.MustCompile(`stream("credit")//transaction`, QaCPlus)
	out := q.Explain().String()
	for _, want := range []string{
		"EXPLAIN plan=QaC+",
		"query:",
		"rewritten:",
		"streams:   credit",
		"tsid-index",
		"predicted:",
		"observed:  <not yet evaluated>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
	if _, err := q.Eval(evalAt); err != nil {
		t.Fatal(err)
	}
	out = q.Explain().String()
	if !strings.Contains(out, "observed:  fillers-scanned=") {
		t.Errorf("post-eval output missing observed line:\n%s", out)
	}
}
