package xcql

import (
	"strings"
	"testing"
)

// Explain must name the same plan whose counters LastStats reports, for
// every physical plan, and the access paths must match the plan's shape:
// CaQ materializes, QaC walks get_fillers per hole, QaC+ takes the
// tsid-index shortcut.
func TestExplainMatchesPlanAcrossModes(t *testing.T) {
	const query = `for $t in stream("credit")//transaction return $t/amount`
	wantOps := map[Mode]string{
		CaQ:     "materialize-view",
		QaC:     "get_fillers",
		QaCPlus: "tsid-index",
	}
	for _, mode := range []Mode{CaQ, QaC, QaCPlus} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := NewRuntime()
			rt.RegisterStream("credit", buildCreditStore(t))
			q := rt.MustCompile(query, mode)

			ex := q.Explain()
			if ex.Plan != mode.String() {
				t.Fatalf("Explain().Plan = %q, want %q", ex.Plan, mode.String())
			}
			if ex.Evaluated {
				t.Fatal("Evaluated = true before any evaluation")
			}
			if len(ex.Streams) != 1 || ex.Streams[0] != "credit" {
				t.Fatalf("Streams = %v", ex.Streams)
			}
			found := false
			for _, tgt := range ex.Targets {
				if tgt.Op == wantOps[mode] {
					found = true
				}
			}
			if !found {
				t.Fatalf("plan %s: no %q target in %v", mode, wantOps[mode], ex.Targets)
			}

			if _, err := q.Eval(evalAt); err != nil {
				t.Fatal(err)
			}
			ex = q.Explain()
			if !ex.Evaluated {
				t.Fatal("Evaluated = false after evaluation")
			}
			// the contract of the acceptance criteria: Explain names the
			// same plan whose counters LastStats reports
			if got := q.LastStats().Plan; ex.Plan != got || ex.Observed.Plan != got {
				t.Fatalf("Explain plan %q / observed %q != LastStats plan %q",
					ex.Plan, ex.Observed.Plan, got)
			}
			if ex.Observed.FillersScanned == 0 {
				t.Fatal("observed stats empty after evaluation")
			}
		})
	}
}

// The prediction is a store census: on the indexed store the QaC+
// tsid-index path predicts exactly the versions the index would return,
// and the observed counters of a real run agree.
func TestExplainPredictionTracksStore(t *testing.T) {
	rt := NewRuntime()
	rt.RegisterStream("credit", buildCreditStore(t))
	q := rt.MustCompile(`stream("credit")//transaction`, QaCPlus)

	ex := q.Explain()
	if len(ex.Targets) == 0 {
		t.Fatal("no targets")
	}
	tgt := ex.Targets[0]
	if tgt.Op != "tsid-index" || tgt.TSID != 5 || tgt.Tag != "transaction" {
		t.Fatalf("target = %+v", tgt)
	}
	if tgt.Versions == 0 || tgt.Holes == 0 {
		t.Fatalf("census empty: %+v", tgt)
	}
	if ex.Predicted.TSIDLookups != 1 {
		t.Fatalf("predicted tsid lookups = %d, want 1", ex.Predicted.TSIDLookups)
	}

	if _, err := q.Eval(evalAt); err != nil {
		t.Fatal(err)
	}
	obs := q.LastStats()
	// prediction counts versions ever stored; the observed index fetch
	// returns the ones alive at the evaluation instant — never more
	if obs.TSIDIndexHits > int64(tgt.Versions) {
		t.Errorf("observed hits %d > predicted versions %d", obs.TSIDIndexHits, tgt.Versions)
	}
	if obs.TSIDLookups != ex.Predicted.TSIDLookups {
		t.Errorf("tsid lookups: observed %d, predicted %d", obs.TSIDLookups, ex.Predicted.TSIDLookups)
	}
}

// An empty runtime still explains: unregistered streams census to zero
// instead of failing.
func TestExplainUnregisteredStream(t *testing.T) {
	rt := NewRuntime()
	rt.RegisterStream("credit", buildCreditStore(t))
	q := rt.MustCompile(`stream("credit")//transaction`, QaC)
	q.rt = NewRuntime() // same plan, no stores behind it anymore
	ex := q.Explain()
	if ex.Plan != "QaC" {
		t.Fatalf("plan = %q", ex.Plan)
	}
	for _, tgt := range ex.Targets {
		if tgt.Versions != 0 || tgt.Holes != 0 || tgt.CostPerPass != 0 {
			t.Errorf("census of unregistered stream not zero: %+v", tgt)
		}
	}
}

func TestExplainString(t *testing.T) {
	rt := NewRuntime()
	rt.RegisterStream("credit", buildCreditStore(t))
	q := rt.MustCompile(`stream("credit")//transaction`, QaCPlus)
	out := q.Explain().String()
	for _, want := range []string{
		"EXPLAIN plan=QaC+",
		"query:",
		"rewritten:",
		"streams:   credit",
		"tsid-index",
		"predicted:",
		"observed:  <not yet evaluated>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
	if _, err := q.Eval(evalAt); err != nil {
		t.Fatal(err)
	}
	out = q.Explain().String()
	if !strings.Contains(out, "observed:  fillers-scanned=") {
		t.Errorf("post-eval output missing observed line:\n%s", out)
	}
}
