// Package xcql is the paper's primary contribution: the XCQL compiler
// that translates temporal queries over the virtual temporal view into
// plain engine queries over the fragmented stream (Figure 3), under four
// physical plans:
//
//   - CaQ  (Construct-and-Query): materialize the whole temporal document,
//     then run the query on it.
//   - QaC  (Query-as-Construct): run directly on fragments, resolving
//     holes on demand from the root via get_fillers.
//   - QaC+ (tsid-indexed QaC): jump straight to the fillers a descendant
//     step needs using the tsid index, skipping hole reconciliation on
//     levels the query never touches.
//   - QaC++ (prefix-labeled QaC+): serve every access from the store's
//     Dewey-label index, so evaluation never resolves a hole and never
//     scans the fragment log — assembly order comes from the labels.
//
// The evaluator is shared across plans; only the rewritten access paths
// differ, so measured differences between modes are plan differences —
// exactly the comparison of §7.
package xcql

import "fmt"

// Mode selects the physical execution plan.
type Mode uint8

const (
	// CaQ constructs the full temporal document, then queries it.
	CaQ Mode = iota
	// QaC queries fragments directly, reconciling holes on demand along
	// the query path, starting from the root filler.
	QaC
	// QaCPlus is QaC with the tsid index: descendant steps over the whole
	// stream fetch exactly the fillers they need.
	QaCPlus
	// QaCPlusPlus is QaC+ with Dewey-style prefix labels: every access —
	// root, batched children, descendant jumps, projections and hole
	// materialization — is served from the store's label index, so the
	// plan resolves zero holes and performs zero log scans.
	QaCPlusPlus
)

// String returns the paper's spelling of the mode.
func (m Mode) String() string {
	switch m {
	case CaQ:
		return "CaQ"
	case QaC:
		return "QaC"
	case QaCPlus:
		return "QaC+"
	case QaCPlusPlus:
		return "QaC++"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// ParseMode parses a mode name as printed by String (case-sensitive).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "CaQ", "caq":
		return CaQ, nil
	case "QaC", "qac":
		return QaC, nil
	case "QaC+", "qac+", "QaCPlus":
		return QaCPlus, nil
	case "QaC++", "qac++", "QaCPlusPlus":
		return QaCPlusPlus, nil
	default:
		return 0, fmt.Errorf("xcql: unknown mode %q (want CaQ, QaC, QaC+ or QaC++)", s)
	}
}
