package xcql

import (
	"context"
	"errors"
	"testing"
	"time"

	"xcql/internal/budget"
)

// FuzzCompile shakes the whole query path: arbitrary source text is
// compiled under all four plans, and whatever compiles is evaluated
// over the running-example store under a tight budget. The contract
// under fuzz input is "typed error or result, never a panic": the engine
// boundary must absorb evaluator panics (EvalError.Stack set means an
// internal bug escaped), and the budget must bound any accidentally
// expensive query the fuzzer synthesizes.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		`1 + 2 * 3`,
		`for $t in stream("credit")//transaction return $t`,
		`for $a in stream("credit")//account where number($a/creditLimit) > 1000 return string($a/customer)`,
		`stream("credit")//account?[2001-01-01T00:00:00,2002-01-01T00:00:00]`,
		`stream("credit")//creditLimit#[1,last]`,
		`for $t in stream("credit")//transaction return <hit>{$t/vendor}</hit>`,
		`declare function f($x) { if ($x = 0) then 0 else f($x - 1) }; f(3)`,
		`declare function boom($x) { boom($x + 1) }; boom(0)`,
		`stream("credit")//status?[start,now]`,
		// descendant step straight off the stream: the shape QaC++
		// compiles to a label-range scan (fnByLabel)
		`for $s in stream("credit")//status return $s`,
		`get_fillers(1)`,
		`((((`,
		`for $x in`,
		`"unterminated`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	rt := newRuntime(f)
	lim := Limits{
		MaxSteps: 50000,
		MaxDepth: 64,
		MaxItems: 10000,
		MaxBytes: 1 << 20,
		Timeout:  2 * time.Second,
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		for _, mode := range allModes {
			q, err := rt.Compile(src, mode)
			if err != nil {
				continue // rejecting garbage is fine; crashing is not
			}
			_, err = q.EvalLimits(context.Background(), evalAt, lim)
			if err == nil {
				continue
			}
			var ee *EvalError
			if errors.As(err, &ee) && ee.Stack != nil {
				t.Fatalf("%s: evaluator panicked on %q:\n%v\n%s", mode, src, ee.Err, ee.Stack)
			}
			// Resource trips must carry a known limit kind.
			if re, ok := ResourceCause(err); ok {
				switch re.Limit {
				case budget.LimitSteps, budget.LimitDepth, budget.LimitItems,
					budget.LimitBytes, budget.LimitTimeout, budget.LimitCanceled:
				default:
					t.Fatalf("%s: unknown limit kind %q on %q", mode, re.Limit, src)
				}
			}
		}
	})
}
