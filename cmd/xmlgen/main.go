// Command xmlgen generates XMark-style auction data — the workload of the
// paper's evaluation — either as a whole XML document or as the
// fragmented stream a server would transmit.
//
// Usage:
//
//	xmlgen -scale 0.05 > auction.xml
//	xmlgen -scale 0.05 -fragments > auction_fillers.xml
//	xmlgen -structure > auction_structure.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"xcql/internal/xmark"
)

func main() {
	scale := flag.Float64("scale", 0.0, "XMark scaling factor (0 = minimal document)")
	seed := flag.Uint64("seed", 1, "deterministic generator seed")
	fragments := flag.Bool("fragments", false, "emit the fragmented stream instead of the document")
	structure := flag.Bool("structure", false, "emit the stream's tag structure and exit")
	stats := flag.Bool("stats", false, "print sizes to stderr")
	flag.Parse()

	out := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer out.Flush()

	if *structure {
		fmt.Fprintln(out, xmark.Structure().String())
		return
	}
	cfg := xmark.Config{Scale: *scale, Seed: *seed}
	if *fragments {
		s, frags, plain := xmark.GenerateFragments(cfg)
		_ = s
		for _, f := range frags {
			if err := f.ToXML().Encode(out); err != nil {
				fmt.Fprintln(os.Stderr, "xmlgen:", err)
				os.Exit(1)
			}
			fmt.Fprintln(out)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "document: %d bytes, fragmented: %d bytes, fragments: %d\n",
				plain, xmark.FragmentedSize(frags), len(frags))
		}
		return
	}
	doc := xmark.Generate(cfg)
	if err := doc.Root().Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(1)
	}
	fmt.Fprintln(out)
	if *stats {
		fmt.Fprintf(os.Stderr, "document: %d bytes\n", len(doc.Root().String()))
	}
}
