// Command figure4 regenerates the paper's Figure 4: run time of XMark
// queries Q1, Q2 and Q5 over fragmented auction streams at three sizes,
// under the four execution plans QaC++, QaC+, QaC and CaQ.
//
//	figure4             # full grid at the paper's scales (0, 0.05, 0.1)
//	figure4 -quick      # small scales for a fast smoke run
//	figure4 -indexed    # ablation: indexed store instead of the paper's
//	                    # linear-scan get_fillers cost model
package main

import (
	"flag"
	"fmt"
	"os"

	"xcql/internal/evalbench"
)

func main() {
	quick := flag.Bool("quick", false, "use small scales for a fast run")
	indexed := flag.Bool("indexed", false, "use the indexed store (ablation) instead of the paper's scan cost model")
	quiet := flag.Bool("quiet", false, "suppress per-cell progress")
	flag.Parse()

	scales := evalbench.Scales
	if *quick {
		scales = evalbench.QuickScales
	}
	var progress *os.File
	if !*quiet {
		progress = os.Stderr
	}
	rows, err := evalbench.RunFigure4(scales, !*indexed, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figure4:", err)
		os.Exit(1)
	}
	fmt.Println()
	if *indexed {
		fmt.Println("Figure 4 (ablation: indexed fragment store)")
	} else {
		fmt.Println("Figure 4 (paper cost model: get_fillers scans the fragment log)")
	}
	fmt.Println()
	fmt.Print(evalbench.FormatTable(rows))
	fmt.Println()
	fmt.Println("Speedup summary (paper: roughly an order of magnitude per step at the larger sizes)")
	fmt.Println()
	fmt.Print(evalbench.SpeedupSummary(rows))
}
