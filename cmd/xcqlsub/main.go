// Command xcqlsub is the subscriber counterpart to `streamdemo -serve`:
// it registers a standing XCQL query against a running query API over a
// WebSocket and prints each delta as it arrives, until interrupted or
// the server closes the stream.
//
//	xcqlsub -addr 127.0.0.1:9280 'for $t in stream("credit")//transaction return $t'
//	xcqlsub -addr 127.0.0.1:9280 -mode QaC -full 'count(stream("credit")//transaction)'
//	xcqlsub -addr 127.0.0.1:9280 -json ...   # raw wire frames, one JSON object per line
//
// Closing the connection (interrupt) unregisters the query server-side;
// a registration's lifetime is its socket's lifetime.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"xcql/internal/registry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9280", "query API address (host:port of streamdemo -serve)")
	mode := flag.String("mode", "QaC+", `physical plan: "CaQ", "QaC" or "QaC+"`)
	full := flag.Bool("full", false, "full re-evaluation per arrival instead of incremental deltas")
	raw := flag.Bool("json", false, "print raw wire frames as JSON lines instead of formatted deltas")
	timeout := flag.Duration("timeout", 5*time.Second, "dial + handshake timeout")
	flag.Parse()

	query := strings.TrimSpace(strings.Join(flag.Args(), " "))
	if query == "" {
		fmt.Fprintln(os.Stderr, "usage: xcqlsub [-addr host:port] [-mode M] [-full] 'XCQL query'")
		os.Exit(2)
	}

	sub, err := registry.DialSubscribe(*addr, registry.RegisterRequest{
		Query:       query,
		Mode:        *mode,
		Incremental: !*full,
	}, *timeout)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	fmt.Fprintf(os.Stderr, "registered id=%d group=%q; waiting for deltas (interrupt to unsubscribe)\n",
		sub.ID, sub.Group)

	// an interrupt closes the socket, which is the unregister protocol
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		sub.Close()
	}()

	enc := json.NewEncoder(os.Stdout)
	for {
		res, err := sub.Next()
		if err != nil {
			// normal endings: our own interrupt-triggered close or the
			// server shutting down
			fmt.Fprintf(os.Stderr, "stream closed: %v\n", err)
			return
		}
		if *raw {
			if err := enc.Encode(res); err != nil {
				log.Fatal(err)
			}
			continue
		}
		switch {
		case res.Err != "":
			fmt.Printf("[%s] ERROR: %s\n", res.At, res.Err)
		case res.Degraded != "":
			fmt.Printf("[%s] %s\n", res.At, res.Degraded)
		default:
			for _, item := range res.Delta {
				fmt.Printf("[%s] %s\n", res.At, item)
			}
		}
	}
}
