// Command xcqlrun evaluates an XCQL query against a fragment stream read
// from a file (the output of fragmenter or xmlgen -fragments).
//
// Usage:
//
//	xcqlrun -structure s.xml -fragments f.xml -stream credit \
//	        -mode QaC+ -at 2003-11-15T12:00:00 \
//	        'for $a in stream("credit")//account return $a/customer'
//
// With -plan the translated query is printed instead of being run. With
// -explain the query runs and the plan explanation — access paths plus
// predicted vs observed cost counters — goes to stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"xcql"
	"xcql/internal/fragment"
	"xcql/internal/tagstruct"
	"xcql/internal/xmldom"
)

func main() {
	structPath := flag.String("structure", "", "tag structure file (wire form)")
	fragPath := flag.String("fragments", "", "fragment stream file")
	streamName := flag.String("stream", "stream", "name the fragments are registered under")
	modeStr := flag.String("mode", "QaC+", "execution plan: CaQ, QaC or QaC+")
	atStr := flag.String("at", "now", "evaluation instant (ISO-8601 or 'now')")
	showPlan := flag.Bool("plan", false, "print the translated plan instead of evaluating")
	explain := flag.Bool("explain", false, "evaluate, then print the plan explanation (access paths, predicted vs observed cost) to stderr")
	queryFile := flag.String("f", "", "read the query from a file instead of argv")
	showTrace := flag.Bool("trace", false, "dump the parse→translate→execute→materialize timeline to stderr")
	showStats := flag.Bool("stats", false, "print the evaluation's cost counters to stderr")
	parallel := flag.Int("parallel", 1, "worker count for parallel hole resolution (1 = sequential)")
	cacheSize := flag.Int("cache", 0, "filler-resolution cache capacity in entries (0 = uncached)")
	flag.Parse()

	query, err := readQuery(*queryFile, flag.Args())
	if err != nil {
		fatal(err)
	}
	mode, err := xcql.ParseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	at := time.Now().UTC()
	if *atStr != "now" {
		dt, err := xcql.ParseDateTime(*atStr)
		if err != nil {
			fatal(err)
		}
		at = dt.Resolve(time.Now().UTC())
	}

	engine := xcql.NewEngine()
	engine.SetParallelism(*parallel)
	engine.SetCache(*cacheSize)
	if *structPath != "" {
		structure, store, err := loadStream(*structPath, *fragPath)
		if err != nil {
			fatal(err)
		}
		_ = structure
		engine.RegisterStore(*streamName, store)
	}
	var sink *xcql.CollectorSink
	if *showTrace {
		sink = &xcql.CollectorSink{}
		engine.SetTraceSink(sink)
	}
	q, err := engine.Compile(query, mode)
	if err != nil {
		fatal(err)
	}
	if *showPlan {
		fmt.Println(q.Plan.String())
		return
	}
	start := time.Now()
	seq, err := q.Eval(at)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Println(xcql.FormatSequence(seq))
	fmt.Fprintf(os.Stderr, "%d item(s), %s plan, %v\n", len(seq), mode, elapsed)
	if *showStats {
		stats := q.LastStats()
		fmt.Fprintln(os.Stderr, stats.String())
		if c := engine.Cache(); c != nil {
			fmt.Fprintln(os.Stderr, "cache:", c.String())
		}
	}
	if *explain {
		fmt.Fprint(os.Stderr, q.Explain().String())
	}
	if sink != nil {
		fmt.Fprint(os.Stderr, sink.Timeline())
	}
}

func readQuery(file string, args []string) (string, error) {
	if file != "" {
		b, err := os.ReadFile(file)
		return string(b), err
	}
	if len(args) == 1 {
		return args[0], nil
	}
	return "", fmt.Errorf("pass the query as the single argument or via -f")
}

func loadStream(structPath, fragPath string) (*tagstruct.Structure, *fragment.Store, error) {
	sf, err := os.Open(structPath)
	if err != nil {
		return nil, nil, err
	}
	structure, err := tagstruct.Parse(sf)
	sf.Close()
	if err != nil {
		return nil, nil, err
	}
	store := fragment.NewStore(structure)
	if fragPath != "" {
		ff, err := os.Open(fragPath)
		if err != nil {
			return nil, nil, err
		}
		defer ff.Close()
		dec := xmldom.NewStreamDecoder(bufio.NewReaderSize(ff, 1<<20))
		for {
			el, err := dec.ReadElement()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, nil, err
			}
			f, err := fragment.FromXML(el)
			if err != nil {
				return nil, nil, err
			}
			if err := store.Add(f); err != nil {
				return nil, nil, err
			}
		}
	}
	return structure, store, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xcqlrun:", err)
	os.Exit(1)
}
