// Command xcqlrun evaluates an XCQL query against a fragment stream read
// from a file (the output of fragmenter or xmlgen -fragments).
//
// Usage:
//
//	xcqlrun -structure s.xml -fragments f.xml -stream credit \
//	        -mode QaC+ -at 2003-11-15T12:00:00 \
//	        'for $a in stream("credit")//account return $a/customer'
//
// With -plan the translated query is printed instead of being run. With
// -explain the query runs and the plan explanation — access paths plus
// predicted vs observed cost counters — goes to stderr.
//
// With -incremental the fragment file is replayed one arrival at a time
// through an incremental continuous query: each arrival prints its
// delta, and the final standing result plus the per-fragment cost
// counters follow at the end.
//
// With -store-dir the store is durable: fragments recovered from the
// directory's segment log are ingested first (exact duplicates from a
// previous run of the same file are coalesced away), and every fragment
// ingested this run is appended to the log before it becomes queryable,
// so a crash mid-ingest loses nothing that was acknowledged.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"xcql"
	"xcql/internal/fragment"
	"xcql/internal/tagstruct"
	"xcql/internal/xmldom"
)

func main() {
	structPath := flag.String("structure", "", "tag structure file (wire form)")
	fragPath := flag.String("fragments", "", "fragment stream file")
	streamName := flag.String("stream", "stream", "name the fragments are registered under")
	modeStr := flag.String("mode", "QaC+", "execution plan: CaQ, QaC, QaC+ or QaC++")
	atStr := flag.String("at", "now", "evaluation instant (ISO-8601 or 'now')")
	showPlan := flag.Bool("plan", false, "print the translated plan instead of evaluating")
	explain := flag.Bool("explain", false, "evaluate, then print the plan explanation (access paths, predicted vs observed cost) to stderr")
	queryFile := flag.String("f", "", "read the query from a file instead of argv")
	showTrace := flag.Bool("trace", false, "dump the parse→translate→execute→materialize timeline to stderr")
	showStats := flag.Bool("stats", false, "print the evaluation's cost counters to stderr")
	parallel := flag.Int("parallel", 1, "worker count for parallel hole resolution (1 = sequential)")
	cacheSize := flag.Int("cache", 0, "filler-resolution cache capacity in entries (0 = uncached)")
	incremental := flag.Bool("incremental", false, "replay the fragment stream through an incremental continuous query, printing per-arrival deltas")
	storeDir := flag.String("store-dir", "", "durable segment store directory: recovered fragments are ingested before the -fragments file and this run's ingest is write-ahead logged")
	tracez := flag.Bool("tracez", false, "with -incremental: record a per-arrival span tree (ingest → cq.eval → inc.recompute) in a flight recorder and dump it to stderr at the end")
	flag.Parse()

	query, err := readQuery(*queryFile, flag.Args())
	if err != nil {
		fatal(err)
	}
	mode, err := xcql.ParseMode(*modeStr)
	if err != nil {
		fatal(err)
	}
	at := time.Now().UTC()
	if *atStr != "now" {
		dt, err := xcql.ParseDateTime(*atStr)
		if err != nil {
			fatal(err)
		}
		at = dt.Resolve(time.Now().UTC())
	}

	engine := xcql.NewEngine()
	engine.SetParallelism(*parallel)
	engine.SetCache(*cacheSize)
	var store *fragment.Store
	var frags []*fragment.Fragment
	if *structPath != "" {
		var err error
		_, store, frags, err = loadStream(*structPath, *fragPath)
		if err != nil {
			fatal(err)
		}
		if *storeDir != "" {
			seg, err := attachSegStore(store, *storeDir)
			if err != nil {
				fatal(err)
			}
			defer seg.Close()
		}
		if !*incremental {
			// one-shot evaluation reads a fully ingested store
			if err := store.AddAll(frags); err != nil {
				fatal(err)
			}
			// re-running over the same durable log re-ingests fragments
			// that were both recovered and in the file; exact duplicates
			// are semantics-preserving and coalesce away
			if removed := store.Coalesce(); removed > 0 {
				fmt.Fprintf(os.Stderr, "coalesced %d duplicate version(s) after recovery\n", removed)
			}
		}
		engine.RegisterStore(*streamName, store)
	} else if *storeDir != "" {
		fatal(fmt.Errorf("-store-dir needs -structure to build the recovered store"))
	}
	var sink *xcql.CollectorSink
	if *showTrace {
		sink = &xcql.CollectorSink{}
		engine.SetTraceSink(sink)
	}
	q, err := engine.Compile(query, mode)
	if err != nil {
		fatal(err)
	}
	if *showPlan {
		fmt.Println(q.Plan.String())
		return
	}
	if *incremental {
		if store == nil {
			fatal(fmt.Errorf("-incremental needs -structure (and -fragments) to replay"))
		}
		runIncremental(q, store, frags, at, *atStr == "now", *showStats, *tracez)
		return
	}
	if *tracez {
		fatal(fmt.Errorf("-tracez needs -incremental: spans are recorded per replayed arrival"))
	}
	start := time.Now()
	seq, err := q.Eval(at)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Println(xcql.FormatSequence(seq))
	fmt.Fprintf(os.Stderr, "%d item(s), %s plan, %v\n", len(seq), mode, elapsed)
	if *showStats {
		stats := q.LastStats()
		fmt.Fprintln(os.Stderr, stats.String())
		if c := engine.Cache(); c != nil {
			fmt.Fprintln(os.Stderr, "cache:", c.String())
		}
	}
	if *explain {
		fmt.Fprint(os.Stderr, q.Explain().String())
	}
	if sink != nil {
		fmt.Fprint(os.Stderr, sink.Timeline())
	}
}

// runIncremental replays the fragment stream one arrival at a time
// through an incremental continuous query. The evaluation clock tracks
// the running maximum validTime unless an explicit -at pins it.
func runIncremental(q *xcql.Query, store *fragment.Store, frags []*fragment.Fragment,
	at time.Time, trackClock bool, showStats bool, tracez bool) {
	clock := at
	var delta xcql.Sequence
	cq := xcql.NewContinuousQuery(q, func(r xcql.Result) { delta = r.Delta })
	cq.Clock = func() time.Time { return clock }
	cq.WithIncremental(true)
	var rec *xcql.FlightRecorder
	if tracez {
		// keep every trace: a CLI replay is small and the point is the dump
		rec = xcql.NewFlightRecorder(xcql.FlightRecorderOptions{SampleEvery: 1})
		cq.SetFlightRecorder(rec)
	}
	fmt.Fprintf(os.Stderr, "incremental: %s\n", cq.IncrementalStrategy())
	start := time.Now()
	for i, f := range frags {
		if err := store.Add(f); err != nil {
			fatal(err)
		}
		if trackClock && f.ValidTime.After(clock) {
			clock = f.ValidTime
		}
		delta = nil
		var sp *xcql.Span
		if rec != nil {
			sp = rec.Start(rec.NewTrace(), "ingest").Annotate("replay", f.TSID, f.Seq)
			f = f.WithTrace(sp.Context())
		}
		if err := cq.EvaluateFragment(f); err != nil {
			fatal(err)
		}
		if sp != nil {
			sp.SetDetail(fmt.Sprintf("arrival=%d filler=%d delta=%d", i+1, f.FillerID, len(delta)))
			sp.End()
		}
		if len(delta) > 0 {
			fmt.Printf("-- arrival %d (filler %d): %d new item(s)\n%s\n",
				i+1, f.FillerID, len(delta), xcql.FormatSequence(delta))
		}
	}
	if rec != nil {
		rec.Flush()
		fmt.Fprint(os.Stderr, rec.Render(0))
	}
	elapsed := time.Since(start)
	snapshot := cq.ItemsSnapshot()
	fmt.Printf("-- final standing result\n%s\n", xcql.FormatSequence(snapshot))
	fmt.Fprintf(os.Stderr, "%d item(s) standing after %d arrival(s), %v\n",
		len(snapshot), len(frags), elapsed)
	if showStats {
		stats := q.LastStats()
		fmt.Fprintln(os.Stderr, stats.String())
		fmt.Fprintf(os.Stderr, "buffer: %d bytes standing, %d bytes high-water\n",
			cq.BufferBytes(), cq.BufferHWMBytes())
	}
}

// attachSegStore wires a durable segment log under the in-memory store:
// recovery first (the recovered fragments are ingested and the cache
// generation advanced, so nothing stale survives), then write-ahead — a
// hook appends every subsequently ingested fragment to the log, stamped
// with the next durable sequence number, before it becomes queryable.
func attachSegStore(store *fragment.Store, dir string) (*xcql.SegStore, error) {
	seg, rep, err := xcql.OpenSegStore(dir, xcql.SegStoreOptions{SnapshotEvery: 1024})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(os.Stderr, "segment store:", rep)
	recovered, err := seg.All()
	if err != nil {
		seg.Close()
		return nil, err
	}
	// recovered fragments are already durable: ingest them before the
	// write-ahead hook is installed so they are not re-appended
	if err := store.AddAll(recovered); err != nil {
		seg.Close()
		return nil, err
	}
	store.AdvanceGeneration()
	_, seq := seg.SeqBounds()
	store.SetWAL(func(f *fragment.Fragment) error {
		seq++
		return seg.Append(f.WithSeq(seq))
	})
	if len(recovered) > 0 {
		fmt.Fprintf(os.Stderr, "recovered %d fragment(s) into the store\n", len(recovered))
	}
	return seg, nil
}

func readQuery(file string, args []string) (string, error) {
	if file != "" {
		b, err := os.ReadFile(file)
		return string(b), err
	}
	if len(args) == 1 {
		return args[0], nil
	}
	return "", fmt.Errorf("pass the query as the single argument or via -f")
}

// loadStream parses the structure and fragment files, returning an EMPTY
// store plus the fragment sequence in file order — the caller decides
// whether to ingest everything up front (one-shot evaluation) or replay
// arrivals one at a time (incremental).
func loadStream(structPath, fragPath string) (*tagstruct.Structure, *fragment.Store, []*fragment.Fragment, error) {
	sf, err := os.Open(structPath)
	if err != nil {
		return nil, nil, nil, err
	}
	structure, err := tagstruct.Parse(sf)
	sf.Close()
	if err != nil {
		return nil, nil, nil, err
	}
	store := fragment.NewStore(structure)
	var frags []*fragment.Fragment
	if fragPath != "" {
		ff, err := os.Open(fragPath)
		if err != nil {
			return nil, nil, nil, err
		}
		defer ff.Close()
		dec := xmldom.NewStreamDecoder(bufio.NewReaderSize(ff, 1<<20))
		for {
			el, err := dec.ReadElement()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, nil, nil, err
			}
			f, err := fragment.FromXML(el)
			if err != nil {
				return nil, nil, nil, err
			}
			frags = append(frags, f)
		}
	}
	return structure, store, frags, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xcqlrun:", err)
	os.Exit(1)
}
