// Command fragmenter cuts an XML document into Hole-Filler fragments
// along a tag structure — what a stream server does before transmitting.
//
// Usage:
//
//	fragmenter -structure structure.xml -in doc.xml > fillers.xml
//	fragmenter -infer -in doc.xml          # derive the structure first
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"xcql/internal/fragment"
	"xcql/internal/tagstruct"
	"xcql/internal/xmldom"
)

func main() {
	structPath := flag.String("structure", "", "tag structure file (wire form)")
	inPath := flag.String("in", "", "input XML document ('-' or empty = stdin)")
	infer := flag.Bool("infer", false, "infer the tag structure from the document")
	coalesce := flag.Bool("coalesce", true, "treat vtFrom-annotated temporal siblings as versions")
	printStructure := flag.Bool("print-structure", false, "also print the structure to stderr")
	flag.Parse()

	doc, err := readDoc(*inPath)
	if err != nil {
		fatal(err)
	}
	var structure *tagstruct.Structure
	switch {
	case *infer:
		structure, err = tagstruct.Infer(doc)
	case *structPath != "":
		var f *os.File
		f, err = os.Open(*structPath)
		if err == nil {
			structure, err = tagstruct.Parse(f)
			f.Close()
		}
	default:
		err = fmt.Errorf("either -structure or -infer is required")
	}
	if err != nil {
		fatal(err)
	}
	if *printStructure {
		fmt.Fprintln(os.Stderr, structure.String())
	}
	fr := fragment.NewFragmenter(structure)
	fr.CoalesceVersions = *coalesce
	frags, err := fr.Fragment(doc)
	if err != nil {
		fatal(err)
	}
	out := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer out.Flush()
	for _, f := range frags {
		if err := f.ToXML().Encode(out); err != nil {
			fatal(err)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(os.Stderr, "%d fragments\n", len(frags))
}

func readDoc(path string) (*xmldom.Node, error) {
	if path == "" || path == "-" {
		return xmldom.Parse(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return xmldom.Parse(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fragmenter:", err)
	os.Exit(1)
}
