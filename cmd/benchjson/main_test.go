package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: xcql
BenchmarkFigure4/Q1/sf=0.005/QaC+-8   	     100	    110705 ns/op	  24072 B/op	     503 allocs/op	  193 fillers/op	  2 holes/op
BenchmarkFigure4/Q1/sf=0.005/CaQ-8    	      10	   9107050 ns/op	 240720 B/op	    5030 allocs/op
BenchmarkSelectivity/price>=40/QaC-8  	      50	    220000 ns/op
PASS
ok  	xcql	1.234s
`

func TestParse(t *testing.T) {
	recs, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	r := recs[0]
	if r.Name != "Figure4/Q1/sf=0.005/QaC+" {
		t.Errorf("Name = %q", r.Name)
	}
	if r.Bench != "Figure4" || r.Query != "Q1" || r.Plan != "QaC+" {
		t.Errorf("dissect = %q/%q/%q", r.Bench, r.Query, r.Plan)
	}
	if r.Scale == nil || *r.Scale != 0.005 {
		t.Errorf("Scale = %v", r.Scale)
	}
	if r.Iterations != 100 || r.NsPerOp != 110705 {
		t.Errorf("iters/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.Metrics["fillers/op"] != 193 || r.Metrics["holes/op"] != 2 {
		t.Errorf("cost metrics = %v", r.Metrics)
	}
	if recs[1].Plan != "CaQ" {
		t.Errorf("rec1 plan = %q", recs[1].Plan)
	}
	if recs[2].Bench != "Selectivity" || recs[2].Plan != "QaC" || recs[2].Query != "" {
		t.Errorf("rec2 = %+v", recs[2])
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"Figure4/Q1/QaC+-8": "Figure4/Q1/QaC+",
		"Figure4/Q1/QaC+":   "Figure4/Q1/QaC+",
		"XMLParse-16":       "XMLParse",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
