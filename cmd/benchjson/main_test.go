package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: xcql
BenchmarkFigure4/Q1/sf=0.005/QaC+-8   	     100	    110705 ns/op	  24072 B/op	     503 allocs/op	  193 fillers/op	  2 holes/op
BenchmarkFigure4/Q1/sf=0.005/CaQ-8    	      10	   9107050 ns/op	 240720 B/op	    5030 allocs/op
BenchmarkSelectivity/price>=40/QaC-8  	      50	    220000 ns/op
PASS
ok  	xcql	1.234s
`

func TestParse(t *testing.T) {
	recs, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	r := recs[0]
	if r.Name != "Figure4/Q1/sf=0.005/QaC+" {
		t.Errorf("Name = %q", r.Name)
	}
	if r.Bench != "Figure4" || r.Query != "Q1" || r.Plan != "QaC+" {
		t.Errorf("dissect = %q/%q/%q", r.Bench, r.Query, r.Plan)
	}
	if r.Scale == nil || *r.Scale != 0.005 {
		t.Errorf("Scale = %v", r.Scale)
	}
	if r.Iterations != 100 || r.NsPerOp != 110705 {
		t.Errorf("iters/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.Metrics["fillers/op"] != 193 || r.Metrics["holes/op"] != 2 {
		t.Errorf("cost metrics = %v", r.Metrics)
	}
	if recs[1].Plan != "CaQ" {
		t.Errorf("rec1 plan = %q", recs[1].Plan)
	}
	if recs[2].Bench != "Selectivity" || recs[2].Plan != "QaC" || recs[2].Query != "" {
		t.Errorf("rec2 = %+v", recs[2])
	}
}

// Histogram quantile metrics reported via b.ReportMetric — e.g. the
// per-eval latency quantiles BenchmarkContinuous emits — are ordinary
// `value unit` pairs and must land in Metrics untouched.
func TestParseQuantileMetrics(t *testing.T) {
	const quantiles = `BenchmarkContinuous/events=100/QaC+-8   	     200	    510705 ns/op	  480000 p50-ns	  900000 p90-ns	 1200000 p99-ns
PASS
`
	recs, err := parse(bufio.NewScanner(strings.NewReader(quantiles)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Metrics["p50-ns"] != 480000 || r.Metrics["p90-ns"] != 900000 || r.Metrics["p99-ns"] != 1200000 {
		t.Errorf("quantile metrics = %v", r.Metrics)
	}
	if r.NsPerOp != 510705 {
		t.Errorf("ns/op = %v", r.NsPerOp)
	}
}

func TestDiffTable(t *testing.T) {
	oldRecs := []Record{
		{Name: "Figure4/Q1/QaC+", NsPerOp: 100000},
		{Name: "Figure4/Q1/CaQ", NsPerOp: 9000000},
		{Name: "Retired/Bench", NsPerOp: 42},
	}
	newRecs := []Record{
		{Name: "Figure4/Q1/QaC+", NsPerOp: 110000},
		{Name: "Figure4/Q1/CaQ", NsPerOp: 4500000},
		{Name: "Continuous/events=100/QaC+", NsPerOp: 510705},
	}
	var sb strings.Builder
	diffTable(&sb, oldRecs, newRecs)
	out := sb.String()
	for _, want := range []string{
		"benchmark",
		"old ns/op",
		"+10.0%", // QaC+ regressed 100000 -> 110000
		"-50.0%", // CaQ improved 9000000 -> 4500000
		"new",    // Continuous only in the new snapshot
		"gone",   // Retired only in the old snapshot
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff table missing %q:\n%s", want, out)
		}
	}
	// a benchmark that exists on both sides appears exactly once
	if n := strings.Count(out, "Figure4/Q1/QaC+"); n != 1 {
		t.Errorf("Figure4/Q1/QaC+ appears %d times, want 1:\n%s", n, out)
	}
}

func TestDiffTableZeroOld(t *testing.T) {
	oldRecs := []Record{{Name: "B", NsPerOp: 0}}
	newRecs := []Record{{Name: "B", NsPerOp: 100}}
	var sb strings.Builder
	diffTable(&sb, oldRecs, newRecs)
	if !strings.Contains(sb.String(), "n/a") {
		t.Errorf("zero-baseline delta should be n/a:\n%s", sb.String())
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"Figure4/Q1/QaC+-8": "Figure4/Q1/QaC+",
		"Figure4/Q1/QaC+":   "Figure4/Q1/QaC+",
		"XMLParse-16":       "XMLParse",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
