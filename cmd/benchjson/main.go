// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, one record per benchmark result line. The
// Makefile's bench-json target pipes the Figure-4 and selectivity
// benchmarks through it to snapshot the performance trajectory
// (BENCH_*.json) across PRs — cost counters and histogram quantile
// metrics (p50-ns/op, p99-ns/op, …) included: any `value unit` pair a
// benchmark reports lands in Metrics verbatim.
//
// Usage:
//
//	go test -bench 'BenchmarkFigure4$' -benchmem . | go run ./cmd/benchjson
//	go run ./cmd/benchjson -diff BENCH_pr3.json BENCH_pr4.json
//
// With -diff, two snapshot files are compared and a regression table of
// the overlapping benchmarks is printed: old and new ns/op and the
// relative change, plus benchmarks only one side has.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result. NsPerOp duplicates Metrics["ns/op"]
// for convenience; every other `value unit` pair lands in Metrics
// verbatim (B/op, allocs/op, fillers/op, …).
type Record struct {
	Name       string             `json:"name"`
	Bench      string             `json:"bench"`
	Query      string             `json:"query,omitempty"`
	Scale      *float64           `json:"scale,omitempty"`
	Plan       string             `json:"plan,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	diffMode := flag.Bool("diff", false, "compare two snapshot files: benchjson -diff old.json new.json")
	flag.Parse()
	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff wants exactly two snapshot files")
			os.Exit(2)
		}
		if err := runDiff(os.Stdout, flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	records, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func loadSnapshot(path string) ([]Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(b, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

func runDiff(w io.Writer, oldPath, newPath string) error {
	oldRecs, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newRecs, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}
	diffTable(w, oldRecs, newRecs)
	return nil
}

// diffTable prints the regression table: overlapping benchmarks with old
// and new ns/op and the relative change, then the names present on only
// one side. A zero old baseline renders the delta as n/a rather than a
// division by zero.
func diffTable(w io.Writer, oldRecs, newRecs []Record) {
	oldBy := make(map[string]Record, len(oldRecs))
	for _, r := range oldRecs {
		oldBy[r.Name] = r
	}
	newNames := make(map[string]bool, len(newRecs))
	fmt.Fprintf(w, "%-50s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, nr := range newRecs {
		newNames[nr.Name] = true
		or, ok := oldBy[nr.Name]
		if !ok {
			continue
		}
		delta := "n/a"
		if or.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(nr.NsPerOp-or.NsPerOp)/or.NsPerOp)
		}
		fmt.Fprintf(w, "%-50s %14.0f %14.0f %9s\n", nr.Name, or.NsPerOp, nr.NsPerOp, delta)
	}
	for _, nr := range newRecs {
		if _, ok := oldBy[nr.Name]; !ok {
			fmt.Fprintf(w, "%-50s %14s %14.0f %9s\n", nr.Name, "-", nr.NsPerOp, "new")
		}
	}
	for _, or := range oldRecs {
		if !newNames[or.Name] {
			fmt.Fprintf(w, "%-50s %14.0f %14s %9s\n", or.Name, or.NsPerOp, "-", "gone")
		}
	}
}

func parse(sc *bufio.Scanner) ([]Record, error) {
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	records := []Record{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name iterations {value unit}... — anything shorter is a header
		// or a failure line, not a result.
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Record{
			Name:       trimProcs(strings.TrimPrefix(fields[0], "Benchmark")),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		r.Bench, r.Query, r.Scale, r.Plan = dissect(r.Name)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			r.Metrics[fields[i+1]] = v
		}
		r.NsPerOp = r.Metrics["ns/op"]
		records = append(records, r)
	}
	return records, sc.Err()
}

// trimProcs drops the trailing -GOMAXPROCS suffix go test appends to the
// benchmark name (Figure4/Q1/sf=0/QaC+-8 → Figure4/Q1/sf=0/QaC+).
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// dissect pulls the structured coordinates out of a sub-benchmark path:
// the leading benchmark name, a Q* segment as the query, an sf= segment
// as the scale, and a plan-name segment as the plan.
func dissect(name string) (bench, query string, scale *float64, plan string) {
	segs := strings.Split(name, "/")
	bench = segs[0]
	for _, s := range segs[1:] {
		switch {
		case strings.HasPrefix(s, "sf="):
			if v, err := strconv.ParseFloat(s[3:], 64); err == nil {
				scale = &v
			}
		case s == "CaQ" || s == "QaC" || s == "QaC+":
			plan = s
		case len(s) >= 2 && s[0] == 'Q' && s[1] >= '0' && s[1] <= '9':
			query = s
		}
	}
	return bench, query, scale, plan
}
