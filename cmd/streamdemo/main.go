// Command streamdemo runs the full push-based architecture over TCP on
// localhost: a server fragments and broadcasts credit-card data, a client
// registers once, receives the fragment stream, and evaluates a
// continuous XCQL query as fragments arrive.
//
//	streamdemo                # one server, one client, a short burst of events
//	streamdemo -events 50     # more charge events
//	streamdemo -chaos         # inject drops/dups/reorders/resets into the wire
//	streamdemo -chaos -seed 7 # a different (but reproducible) fault schedule
//	streamdemo -metrics 127.0.0.1:9190
//	                          # expose /metrics (live counters), /statusz
//	                          # (health + EXPLAIN) and /debug/pprof while
//	                          # the demo runs; an interrupt shuts the HTTP
//	                          # server down gracefully
//	streamdemo -store-dir d   # durable server: fragments write through to
//	                          # a checksummed segment log in d, the server
//	                          # recovers from it on restart (sequence
//	                          # numbers continue), and clients that fall
//	                          # past the in-memory replay window bootstrap
//	                          # from the log instead of losing data
//	streamdemo -log           # structured debug logs for the pipeline
//	streamdemo -serve 127.0.0.1:9280
//	                          # expose the standing-query API: POST XCQL
//	                          # text to /v1/query (or register over a
//	                          # WebSocket at /v1/subscribe) and receive
//	                          # JSON deltas as fragments arrive; the
//	                          # process keeps streaming until interrupted
//
// In -chaos mode the transport deliberately misbehaves under a seeded
// RNG; the run then demonstrates the reliability layer: gap events are
// printed as they are detected, the client reconnects and resumes, and
// the final report shows the delivery counters plus whether the stream
// ended healthy or explicitly degraded.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"time"

	"xcql"
)

const structureXML = `<stream:structure>
<tag type="snapshot" id="1" name="creditAccounts">
  <tag type="temporal" id="2" name="account">
    <tag type="snapshot" id="3" name="customer"/>
    <tag type="temporal" id="4" name="creditLimit"/>
    <tag type="event" id="5" name="transaction">
      <tag type="snapshot" id="6" name="vendor"/>
      <tag type="temporal" id="7" name="status"/>
      <tag type="snapshot" id="8" name="amount"/>
    </tag>
  </tag>
</tag>
</stream:structure>`

func main() {
	events := flag.Int("events", 10, "number of charge events to stream")
	chaos := flag.Bool("chaos", false, "inject transport faults: drops, duplicates, reorders, mid-frame resets")
	seed := flag.Int64("seed", 1, "RNG seed for the fault schedule and reconnect jitter")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /statusz and /debug/pprof on this address (e.g. 127.0.0.1:9190)")
	verbose := flag.Bool("log", false, "emit structured debug logs for the whole pipeline to stderr")
	parallel := flag.Int("parallel", 1, "worker count for parallel hole resolution (1 = sequential)")
	cacheSize := flag.Int("cache", 0, "filler-resolution cache capacity in entries (0 = uncached)")
	incremental := flag.Bool("incremental", false, "evaluate the continuous query incrementally: each arrival touches only the state reachable from its tag")
	serveAddr := flag.String("serve", "", "serve the standing-query API on this address (e.g. 127.0.0.1:9280): register XCQL over HTTP or WebSocket, receive JSON deltas; keeps the demo streaming until interrupted")
	storeDir := flag.String("store-dir", "", "durable segment store directory: publishes write through to it, the server recovers from it on restart, and reconnecting clients bootstrap from it past the replay window")
	historyLimit := flag.Int("history", 0, "bound the server's in-memory replay window to this many fragments (0 = unbounded); with -store-dir older positions stay servable from the log")
	tracez := flag.Bool("tracez", false, "record per-fragment span trees (publish→fsync→eval→fanout→delivery) in a bounded flight recorder; dumps kept traces at the end and serves them at /tracez and /debugz with -metrics")
	flag.Parse()

	// an interrupt stops the embedded HTTP server gracefully instead of
	// tearing the process down mid-response
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var logger *slog.Logger
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}

	structure := xcql.MustParseTagStructure(structureXML)
	registry := xcql.NewRegistry()
	// one recorder spans the whole pipeline: a fragment published on the
	// server side and delivered to the client shows up as a single trace
	var flight *xcql.FlightRecorder
	if *tracez {
		flight = xcql.NewFlightRecorder(xcql.FlightRecorderOptions{SampleEvery: 1})
		flight.RegisterMetrics(registry, "trace")
	}
	var server *xcql.Server
	var seg *xcql.SegStore
	if *storeDir != "" {
		opened, rep, err := xcql.OpenSegStore(*storeDir, xcql.SegStoreOptions{SnapshotEvery: 256})
		if err != nil {
			log.Fatal(err)
		}
		seg = opened
		defer seg.Close()
		fmt.Println("segment store:", rep)
		server, err = xcql.RecoverServer("credit", structure, seg)
		if err != nil {
			log.Fatal(err)
		}
		seg.RegisterMetrics(registry, "segstore")
		if got := server.LatestSeq(); got > 0 {
			fmt.Printf("recovered %d fragments from %s; sequence resumes after %d\n",
				len(server.History()), *storeDir, got)
		}
	} else {
		server = xcql.NewServer("credit", structure)
	}
	if *historyLimit > 0 {
		server.SetHistoryLimit(*historyLimit)
	}
	server.SetLogger(logger)
	server.SetFlightRecorder(flight)
	if seg != nil {
		seg.SetFlightRecorder(flight)
	}
	server.RegisterMetrics(registry, "server")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	var injector *xcql.FaultInjector
	serveOpts := xcql.ServeOptions{}
	if *chaos {
		injector = xcql.NewFaultInjector(xcql.FaultPlan{
			Seed:        *seed,
			DropProb:    0.10,
			DupProb:     0.05,
			ReorderProb: 0.05,
			ResetEvery:  13,
		})
		serveOpts.Faults = injector
		injector.SetLogger(logger)
		injector.RegisterMetrics(registry, "fault")
		fmt.Printf("chaos mode: seed=%d (drop 10%%, dup 5%%, reorder 5%%, reset every 13 frames)\n", *seed)
	}
	go func() { _ = xcql.ServeTCPOptions(server, ln, serveOpts) }()
	fmt.Println("server listening on", ln.Addr())

	// --- client side -------------------------------------------------------
	client, err := xcql.Dial(ln.Addr().String(), xcql.DialOptions{
		Reconnect:      true,
		InitialBackoff: 20 * time.Millisecond,
		MaxBackoff:     time.Second,
		Rand:           rand.New(rand.NewSource(*seed)),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	client.SetLogger(logger)
	client.SetFlightRecorder(flight)
	client.OnGap(func(g xcql.Gap) { fmt.Printf("  !! %s\n", g) })
	client.RegisterMetrics(registry, "client")
	fmt.Printf("client registered with stream %q (structure delivered in the handshake)\n", client.Name())

	engine := xcql.NewEngine()
	engine.SetParallelism(*parallel)
	engine.SetCache(*cacheSize)
	if c := engine.Cache(); c != nil {
		c.RegisterMetrics(registry, "cache")
	}
	engine.AttachClient(client)
	q := engine.MustCompile(
		`for $t in stream("credit")//transaction
		 where $t/amount > 700
		 return <big id="{$t/@id}">{ $t/amount/text() }</big>`, xcql.QaCPlus)
	cq := xcql.NewContinuousQuery(q, func(r xcql.Result) {
		for _, item := range r.Delta {
			fmt.Printf("  continuous result: %s\n", xcql.FormatSequence(xcql.Sequence{item}))
		}
	})
	cq.SetLogger(logger)
	cq.SetFlightRecorder(flight)
	if *incremental {
		cq.WithIncremental(true)
		fmt.Printf("incremental evaluation: %s\n", cq.IncrementalStrategy())
	}
	cq.RegisterMetrics(registry, "cq")
	cq.Attach(client)

	// -serve mounts the multi-tenant standing-query API over the same
	// client store: registrations compiled by this engine share one
	// evaluation per arriving fragment per access path, and subscribers
	// receive JSON deltas over HTTP long-poll-free WebSocket frames
	var querySrv *http.Server
	if *serveAddr != "" {
		qreg := engine.Registry()
		qreg.AttachClient(client)
		qreg.RegisterMetrics(registry, "registry")
		qln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			log.Fatal(err)
		}
		api := engine.ServeQueryAPI()
		if flight != nil {
			api.SetFlightRecorder(flight)
		}
		querySrv = &http.Server{Handler: api}
		go func() { _ = querySrv.Serve(qln) }()
		go func() {
			<-ctx.Done()
			shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = querySrv.Shutdown(shCtx)
		}()
		fmt.Printf("query API on http://%s — POST /v1/query, WebSocket /v1/subscribe, stats /v1/registryz\n", qln.Addr())
	}

	// one registry holds the whole pipeline — server, transport faults,
	// client and continuous query — and doubles as the /metrics handler;
	// /statusz renders the human-readable health + EXPLAIN view
	var httpSrv *http.Server
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", registry)
		mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
			sh, ch := server.Health(), client.Health()
			fmt.Fprintf(w, "stream %q\n", sh.Stream)
			fmt.Fprintf(w, "server: watermark-seq=%d watermark=%s subscribers=%d max-queue-depth=%d dropped=%d\n",
				sh.WatermarkSeq, sh.WatermarkValidTime.Format(time.RFC3339), sh.Subscribers, sh.MaxQueueDepth, sh.Dropped)
			fmt.Fprintf(w, "client: watermark-seq=%d watermark=%s seq-lag=%d missing=%d lost=%d degraded=%q\n",
				ch.WatermarkSeq, ch.WatermarkValidTime.Format(time.RFC3339), ch.SeqLag, ch.Missing, ch.Lost, ch.Degraded)
			fmt.Fprintf(w, "watermark lag: %v\n", xcql.WatermarkLag(server, client))
			fmt.Fprintf(w, "evaluations: %d\n", cq.Evaluations())
			fmt.Fprintf(w, "ingest->result latency: %s\n", cq.Latency())
			fmt.Fprintf(w, "delivery latency:       %s\n\n", client.DeliveryLatency())
			fmt.Fprint(w, q.Explain())
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		if flight != nil {
			mux.Handle("/tracez", flight)
		}
		// /debugz is the one-page "what is this process doing" snapshot:
		// goroutines, heap, and the flight recorder's retained traces
		mux.HandleFunc("/debugz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "goroutines: %d\n", runtime.NumGoroutine())
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			fmt.Fprintf(w, "heap: %d KiB in use / %d KiB sys, %d GC cycles\n",
				ms.HeapInuse/1024, ms.Sys/1024, ms.NumGC)
			if flight == nil {
				fmt.Fprintln(w, "flight recorder: disabled (run with -tracez)")
				return
			}
			st := flight.Stats()
			fmt.Fprintf(w, "flight recorder: %d active, %d kept in ring (%d finalized, %d sampled out, %d overwritten), p99 threshold %s\n",
				st.Active, st.KeptInRing, st.Finalized, st.SampledOut, st.RingDropped,
				time.Duration(st.ThresholdNs))
			e2e := flight.E2E().Snapshot()
			fmt.Fprintf(w, "e2e latency: p50=%s p90=%s p99=%s\n", e2e.Quantile(0.5), e2e.Quantile(0.9), e2e.Quantile(0.99))
			for _, q := range []float64{0.5, 0.9, 0.99} {
				if ex := e2e.ExemplarNear(q); ex != 0 {
					fmt.Fprintf(w, "  p%02.0f exemplar: trace %016x (GET /tracez?trace=%016x)\n", q*100, ex, ex)
				}
			}
			fmt.Fprintln(w)
			fmt.Fprint(w, flight.Render(10))
		})
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		httpSrv = &http.Server{Handler: mux}
		go func() { _ = httpSrv.Serve(mln) }()
		go func() {
			<-ctx.Done()
			shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(shCtx)
		}()
		fmt.Printf("metrics on http://%s/metrics (health on /statusz, snapshot on /debugz, pprof under /debug/pprof/)\n", mln.Addr())
		if flight != nil {
			fmt.Printf("flight recorder on http://%s/tracez (filter with ?trace=, ?stream=, ?tsid=, ?reg=)\n", mln.Addr())
		}
	}

	// --- server side: publish the initial document, then events -------------
	base := time.Now().UTC().Add(-time.Hour)
	el := func(src string) *xcql.Node { return xcql.MustParseDocument(src).Root() }
	server.Publish(xcql.NewFragment(0, 1, base,
		el(`<creditAccounts><hole id="1" tsid="2"/></creditAccounts>`)))
	server.Publish(xcql.NewFragment(1, 2, base,
		el(`<account id="1234"><customer>John Smith</customer><hole id="2" tsid="4"/></account>`)))
	server.Publish(xcql.NewFragment(2, 4, base, el(`<creditLimit>5000</creditLimit>`)))

	holes := `<hole id="2" tsid="4"/>`
	for i := 0; i < *events && ctx.Err() == nil; i++ {
		txID := 100 + i
		holes += fmt.Sprintf(`<hole id="%d" tsid="5"/>`, txID)
		// the account update announces the new hole, the event follows
		server.Publish(xcql.NewFragment(1, 2, base.Add(time.Duration(i+1)*time.Minute),
			el(fmt.Sprintf(`<account id="1234"><customer>John Smith</customer>%s</account>`, holes))))
		amount := 100 * (i + 1)
		server.Publish(xcql.NewFragment(txID, 5, base.Add(time.Duration(i+1)*time.Minute),
			el(fmt.Sprintf(`<transaction id="t%d"><vendor>Shop %d</vendor><amount>%d</amount></transaction>`, i, i, amount))))
		time.Sleep(20 * time.Millisecond)
	}

	// in serve mode the burst is just the opening data set: keep the
	// stream open for API registrations until the user interrupts
	if *serveAddr != "" {
		fmt.Println("event burst complete; serving standing queries (interrupt to stop)")
		<-ctx.Done()
		fmt.Println("\nshutting down")
	}

	// Orderly shutdown: the eos frame triggers the client's final catch-up
	// pass, which re-registers and replays anything the faults ate. Wait
	// until the client's counters have been still for a moment — checking
	// Missing/Lag alone would race the eos frame itself.
	server.Close()
	deadline := time.Now().Add(5 * time.Second)
	prev, stableSince := client.Stats(), time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		if st := client.Stats(); st != prev {
			prev, stableSince = st, time.Now()
			continue
		}
		if time.Since(stableSince) >= 300*time.Millisecond {
			break
		}
	}

	res, err := engine.Eval(`count(stream("credit")//transaction)`, time.Now().UTC())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client store now holds %s transactions (%d fragments)\n",
		xcql.FormatSequence(res), client.Store().Len())

	srv, cli := server.Stats(), client.Stats()
	fmt.Printf("server: published=%d broker-drops=%d retained=%d latest-seq=%d resume-floor=%d bootstraps=%d\n",
		srv.Published, srv.Dropped, srv.Retained, srv.LatestSeq, srv.ResumeFloor, srv.Bootstraps)
	fmt.Printf("client: received=%d duplicates=%d replayed=%d gaps=%d missing=%d lost=%d reconnects=%d last-seq=%d\n",
		cli.Received, cli.Duplicates, cli.Replayed, cli.Gaps, cli.Missing, cli.Lost, cli.Reconnects, cli.LastSeq)
	if cli.Reconnects > 0 {
		fmt.Printf("reconnect outcomes: replay=%d snapshot-bootstrap=%d degraded=%d\n",
			cli.ReconnectReplay, cli.ReconnectSnapshot, cli.ReconnectDegraded)
	}
	if seg != nil {
		ss := seg.Stats()
		fmt.Printf("segment store: segments=%d bytes=%d frames=%d appends=%d fsyncs=%d snapshots=%d gen=%d\n",
			ss.Segments, ss.SegmentBytes, ss.Frames, ss.Appends, ss.Fsyncs, ss.Snapshots, ss.SnapshotGen)
		if srv.StorageErrors > 0 {
			fmt.Printf("segment store DEGRADED: %d storage errors during write-through\n", srv.StorageErrors)
		}
	}
	if injector != nil {
		fmt.Println("injected:", injector)
	}
	if reason, degraded := client.Degraded(); degraded {
		fmt.Println("stream DEGRADED:", reason)
	} else {
		fmt.Println("stream healthy: every published fragment accounted for")
	}
	fmt.Printf("watermark lag: %v, ingest->result latency: %s\n",
		xcql.WatermarkLag(server, client), cq.Latency())
	if *incremental {
		fmt.Printf("incremental buffer: %d bytes standing, %d bytes high-water\n",
			cq.BufferBytes(), cq.BufferHWMBytes())
	}
	if flight != nil {
		flight.Flush()
		st := flight.Stats()
		fmt.Printf("flight recorder: %d trace(s) kept (%d finalized, %d sampled out)\n",
			st.KeptInRing, st.Finalized, st.SampledOut)
		fmt.Print(flight.Render(5))
	}
	fmt.Println("final metric exposition:")
	_, _ = registry.WriteTo(os.Stdout)
	for _, srv := range []*http.Server{httpSrv, querySrv} {
		if srv == nil {
			continue
		}
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(shCtx)
		cancel()
	}
}
