// Command streamdemo runs the full push-based architecture over TCP on
// localhost: a server fragments and broadcasts credit-card data, a client
// registers once, receives the fragment stream, and evaluates a
// continuous XCQL query as fragments arrive.
//
//	streamdemo            # one server, one client, a short burst of events
//	streamdemo -events 50 # more charge events
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"xcql"
	"xcql/internal/stream"
)

const structureXML = `<stream:structure>
<tag type="snapshot" id="1" name="creditAccounts">
  <tag type="temporal" id="2" name="account">
    <tag type="snapshot" id="3" name="customer"/>
    <tag type="temporal" id="4" name="creditLimit"/>
    <tag type="event" id="5" name="transaction">
      <tag type="snapshot" id="6" name="vendor"/>
      <tag type="temporal" id="7" name="status"/>
      <tag type="snapshot" id="8" name="amount"/>
    </tag>
  </tag>
</tag>
</stream:structure>`

func main() {
	events := flag.Int("events", 10, "number of charge events to stream")
	flag.Parse()

	structure := xcql.MustParseTagStructure(structureXML)
	server := xcql.NewServer("credit", structure)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = stream.ServeTCP(server, ln) }()
	fmt.Println("server listening on", ln.Addr())

	// --- client side -------------------------------------------------------
	client, err := xcql.DialTCP(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Printf("client registered with stream %q (structure delivered in the handshake)\n", client.Name())

	engine := xcql.NewEngine()
	engine.AttachClient(client)
	q := engine.MustCompile(
		`for $t in stream("credit")//transaction
		 where $t/amount > 700
		 return <big id="{$t/@id}">{ $t/amount/text() }</big>`, xcql.QaCPlus)
	cq := xcql.NewContinuousQuery(q, func(r xcql.Result) {
		for _, item := range r.Delta {
			fmt.Printf("  continuous result: %s\n", xcql.FormatSequence(xcql.Sequence{item}))
		}
	})
	cq.Attach(client)

	// --- server side: publish the initial document, then events -------------
	base := time.Now().UTC().Add(-time.Hour)
	el := func(src string) *xcql.Node { return xcql.MustParseDocument(src).Root() }
	server.Publish(xcql.NewFragment(0, 1, base,
		el(`<creditAccounts><hole id="1" tsid="2"/></creditAccounts>`)))
	server.Publish(xcql.NewFragment(1, 2, base,
		el(`<account id="1234"><customer>John Smith</customer><hole id="2" tsid="4"/></account>`)))
	server.Publish(xcql.NewFragment(2, 4, base, el(`<creditLimit>5000</creditLimit>`)))

	holes := `<hole id="2" tsid="4"/>`
	for i := 0; i < *events; i++ {
		txID := 100 + i
		holes += fmt.Sprintf(`<hole id="%d" tsid="5"/>`, txID)
		// the account update announces the new hole, the event follows
		server.Publish(xcql.NewFragment(1, 2, base.Add(time.Duration(i+1)*time.Minute),
			el(fmt.Sprintf(`<account id="1234"><customer>John Smith</customer>%s</account>`, holes))))
		amount := 100 * (i + 1)
		server.Publish(xcql.NewFragment(txID, 5, base.Add(time.Duration(i+1)*time.Minute),
			el(fmt.Sprintf(`<transaction id="t%d"><vendor>Shop %d</vendor><amount>%d</amount></transaction>`, i, i, amount))))
		time.Sleep(20 * time.Millisecond)
	}

	// let the client drain, then report
	time.Sleep(300 * time.Millisecond)
	res, err := engine.Eval(`count(stream("credit")//transaction)`, time.Now().UTC())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client store now holds %s transactions (%d fragments; %d delivery drops)\n",
		xcql.FormatSequence(res), client.Store().Len(), server.Dropped())
	server.Close()
}
