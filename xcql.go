// Package xcql is a data stream management system for historical XML
// data — a Go implementation of Bose & Fegaras, "Data Stream Management
// for Historical XML Data" (SIGMOD 2004).
//
// A stream is a finite XML document followed by a continuous stream of
// updates. Documents travel as Hole-Filler fragments: each fragment
// carries a unique filler id, the tag-structure id of its top element and
// a validTime; holes inside a fragment refer to child fragments, and
// re-sending a filler id creates a new version. Clients reassemble a
// virtual temporal view of the whole history — which is never
// materialized unless asked — and run XCQL: XQuery extended with interval
// projections e?[t1,t2], version projections e#[v1,v2], vtFrom/vtTo
// lifespan accessors and the constants start and now.
//
// Queries compile to one of four physical plans over the fragment
// store: CaQ (materialize, then query), QaC (query fragments directly,
// crossing holes on demand), QaC+ (jump to the needed fragments via
// the tsid index) and QaC++ (serve every access from a Dewey-style
// prefix-label index, so evaluation never resolves a hole and never
// scans the fragment log). All four produce identical results; they
// differ — dramatically, see the benchmarks — in how much of the
// document they touch.
//
// Quick start:
//
//	engine := xcql.NewEngine()
//	store, _ := engine.AddDocumentStream("credit", structure, doc)
//	q, _ := engine.Compile(`for $a in stream("credit")//account
//	                        where sum($a/transaction?[now-PT1H,now]/amount) > 5000
//	                        return $a/customer`, xcql.QaCPlus)
//	res, _ := q.Eval(time.Now())
package xcql

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"xcql/internal/budget"
	"xcql/internal/fragment"
	"xcql/internal/obs"
	"xcql/internal/registry"
	"xcql/internal/segstore"
	"xcql/internal/stream"
	"xcql/internal/tagstruct"
	"xcql/internal/temporal"
	ixcql "xcql/internal/xcql"
	"xcql/internal/xmldom"
	"xcql/internal/xq"
	"xcql/internal/xtime"
)

// Re-exported types. The implementation lives in internal packages; these
// aliases are the supported surface.
type (
	// Mode selects the physical plan: CaQ, QaC, QaCPlus or QaCPlusPlus.
	Mode = ixcql.Mode
	// Query is a compiled XCQL query bound to an engine. Set Query.Limits
	// and evaluate with Query.EvalContext for governed execution.
	Query = ixcql.Query
	// Limits bounds one evaluation: MaxSteps, MaxDepth, MaxItems,
	// MaxBytes and a Timeout deadline. The zero value is unlimited except
	// recursion depth, which defaults to DefaultMaxDepth.
	Limits = ixcql.Limits
	// ResourceError reports which limit an evaluation tripped; it unwraps
	// to context.Canceled/DeadlineExceeded for cancellation trips.
	ResourceError = budget.ResourceError
	// EvalError is the engine boundary's structured failure: query text,
	// plan, and the underlying cause (a *ResourceError for limit trips, a
	// recovered panic with Stack set for evaluator bugs).
	EvalError = ixcql.EvalError
	// OverloadError is the admission-control rejection issued when the
	// engine already runs its maximum of concurrent evaluations.
	OverloadError = ixcql.OverloadError
	// TagStructure is the structural summary driving fragmentation and
	// translation (§4.1 of the paper).
	TagStructure = tagstruct.Structure
	// Tag is one node of a TagStructure.
	Tag = tagstruct.Tag
	// TagType is snapshot, temporal or event.
	TagType = tagstruct.TagType
	// Fragment is one filler on the wire.
	Fragment = fragment.Fragment
	// Store is a client-side fragment repository.
	Store = fragment.Store
	// Fragmenter cuts documents into fragments along a TagStructure.
	Fragmenter = fragment.Fragmenter
	// Node is an XML tree node.
	Node = xmldom.Node
	// Sequence is a query result: an ordered sequence of items.
	Sequence = xq.Sequence
	// Item is one value of the data model (node, string, number, bool,
	// dateTime or duration).
	Item = xq.Item
	// Func is a user-defined query function.
	Func = xq.Func
	// EvalContext is the dynamic context passed to user functions.
	EvalContext = xq.Context
	// Server multicasts a fragment stream to registered clients.
	Server = stream.Server
	// Client receives a fragment stream into a local store.
	Client = stream.Client
	// ContinuousQuery re-evaluates a query as fragments arrive.
	ContinuousQuery = stream.ContinuousQuery
	// Result is one evaluation of a continuous query.
	Result = stream.Result
	// Gap is a run of sequence numbers a client failed to receive.
	Gap = stream.Gap
	// ClientStats is a snapshot of a client's delivery counters.
	ClientStats = stream.ClientStats
	// ServerStats is a snapshot of a server's publish counters.
	ServerStats = stream.ServerStats
	// EvalStats is the per-evaluation cost profile: fillers scanned,
	// holes resolved, tsid-index hits, bytes materialized, nodes
	// constructed and per-phase wall times. Query.LastStats returns it.
	EvalStats = obs.EvalStats
	// Explain describes a compiled query's physical plan: access paths,
	// predicted cost against current store contents, and the observed
	// counters of the last evaluation. Query.Explain returns it.
	Explain = ixcql.Explain
	// ExplainTarget is one store access path in an Explain.
	ExplainTarget = ixcql.ExplainTarget
	// CacheExplain is an Explain's predicted cache effectiveness.
	CacheExplain = ixcql.CacheExplain
	// Cache is the LRU filler-resolution cache shared by queries; see
	// Engine.SetCache and Query.WithCache.
	Cache = fragment.Cache
	// CacheStats is a snapshot of a Cache's hit/miss/eviction counters.
	CacheStats = fragment.CacheStats
	// Histogram is a fixed-bucket latency histogram with lock-free
	// recording and p50/p90/p99 estimation.
	Histogram = obs.Histogram
	// HistogramSnapshot is a point-in-time copy of a Histogram.
	HistogramSnapshot = obs.HistogramSnapshot
	// ServerHealth is a server progress snapshot: watermarks, queue
	// depths, drops.
	ServerHealth = stream.ServerHealth
	// ClientHealth is a client progress snapshot: watermarks, lag,
	// missing and lost fragments.
	ClientHealth = stream.ClientHealth
	// SubscriptionHealth is one subscription's backlog snapshot.
	SubscriptionHealth = stream.SubscriptionHealth
	// TraceSink receives phase spans (parse, translate, execute,
	// materialize, eval) when tracing is enabled via SetTraceSink.
	TraceSink = obs.TraceSink
	// SpanRecord is one captured trace span.
	SpanRecord = obs.SpanRecord
	// CollectorSink is a TraceSink that buffers spans in memory and can
	// render them as a timeline.
	CollectorSink = obs.CollectorSink
	// WriterSink is a TraceSink that prints each span to an io.Writer.
	WriterSink = obs.WriterSink
	// Registry is a process-level registry of named counters and gauges
	// with a plain-text exposition format (it is an http.Handler).
	Registry = obs.Registry
	// Counter is a monotonically increasing atomic counter in a Registry.
	Counter = obs.Counter
	// TraceContext is a compact per-fragment trace identity (trace id +
	// causal parent span) that rides fragments across the wire and links
	// publish→fsync→eval→fanout→delivery into one span tree.
	TraceContext = obs.TraceContext
	// FlightRecorder is the bounded in-memory tracer: tail-sampled trace
	// ring with p99/flag retention, /v1/tracez JSON, and an e2e latency
	// histogram with per-bucket exemplars.
	FlightRecorder = obs.FlightRecorder
	// FlightRecorderOptions tune a FlightRecorder (ring capacity,
	// sampling rate, quiescence window).
	FlightRecorderOptions = obs.FlightRecorderOptions
	// TraceRecord is one finalized trace in the recorder's ring.
	TraceRecord = obs.TraceRecord
	// TraceSpan is one span inside a TraceRecord.
	TraceSpan = obs.TraceSpan
	// Span is a live span handle from FlightRecorder.Start; all methods
	// are safe on a nil receiver (tracing disabled).
	Span = obs.Span
	// TraceFilter selects traces from a FlightRecorder (stream, tsid,
	// registration id).
	TraceFilter = obs.TraceFilter
	// FlightStats is a snapshot of a FlightRecorder's retention counters.
	FlightStats = obs.FlightStats
	// DialOptions tune a client's reconnect/backoff behaviour.
	DialOptions = stream.DialOptions
	// ServeOptions tune the TCP serving side (buffers, fault injection).
	ServeOptions = stream.ServeOptions
	// FaultPlan configures deterministic transport-fault injection.
	FaultPlan = stream.FaultPlan
	// FaultStats counts the faults an injector has inflicted.
	FaultStats = stream.FaultStats
	// FaultInjector corrupts a fragment flow on purpose (tests, -chaos).
	FaultInjector = stream.FaultInjector
	// SegStore is the durable segment store: an append-only, checksummed
	// fragment log with crash recovery, snapshots and compaction. Servers
	// write through to one (Server.AttachDurable) so reconnecting clients
	// can bootstrap past the in-memory replay window; standalone hosts use
	// it to survive restarts (see OpenSegStore).
	SegStore = segstore.Store
	// SegStoreOptions tune a SegStore: segment size, fsync policy,
	// automatic snapshot cadence.
	SegStoreOptions = segstore.Options
	// RecoveryReport says what opening a SegStore found: frames and
	// snapshots loaded, torn tails truncated, corrupt files quarantined,
	// and — when data was lost — an explicit Degraded reason.
	RecoveryReport = segstore.RecoveryReport
	// SegStoreStats is a snapshot of a SegStore's counters.
	SegStoreStats = segstore.Stats
	// CompactStats reports one durable compaction pass.
	CompactStats = segstore.CompactStats
	// DurableLog is the write-through/replay interface a Server uses for
	// durable bootstrap; *SegStore satisfies it.
	DurableLog = stream.DurableLog
	// Compactor runs registered maintenance steps (in-memory coalescing,
	// durable compaction, snapshots) on one background goroutine.
	Compactor = fragment.Compactor
	// QueryRegistry is the multi-tenant standing-query registry: it
	// groups registered queries by access path and evaluates each
	// shared path once per arriving fragment, fanning per-registration
	// deltas out. Engine.Registry returns the engine's registry.
	QueryRegistry = registry.Registry
	// QueryRegistration is one standing query's handle in a
	// QueryRegistry: consume results, inspect degradation, Close to
	// unregister.
	QueryRegistration = registry.Registration
	// RegistryOptions configures one registration (incremental mode,
	// limits, delivery).
	RegistryOptions = registry.Options
	// RegistryResult is one delivery to a registration: the arrival's
	// delta, or a degradation/error.
	RegistryResult = registry.Result
	// RegistryStats is a snapshot of a QueryRegistry's sharing counters.
	RegistryStats = registry.Stats
	// RegistryGroupStats is a snapshot of one sharing group.
	RegistryGroupStats = registry.GroupStats
	// RegistrationStats is a snapshot of one registration's counters.
	RegistrationStats = registry.RegStats
	// QueryAPI is the HTTP + WebSocket front of a QueryRegistry:
	// register XCQL text over HTTP, stream JSON deltas over a
	// hand-rolled RFC 6455 WebSocket. It is an http.Handler.
	QueryAPI = registry.API
	// ResultCodec encodes registry results for the wire; JSON is built
	// in, alternative codecs plug into QueryAPI.RegisterCodec.
	ResultCodec = registry.Codec
	// DateTime is a time point, possibly the symbolic start or now.
	DateTime = xtime.DateTime
	// Duration is an ISO-8601 duration (PnYnMnDTnHnMnS).
	Duration = xtime.Duration
	// Interval is a closed time interval.
	Interval = xtime.Interval
)

// Execution modes.
const (
	CaQ         = ixcql.CaQ
	QaC         = ixcql.QaC
	QaCPlus     = ixcql.QaCPlus
	QaCPlusPlus = ixcql.QaCPlusPlus
)

// Tag types.
const (
	Snapshot = tagstruct.Snapshot
	Temporal = tagstruct.Temporal
	Event    = tagstruct.Event
)

// Resource-limit kinds, reported in ResourceError.Limit.
const (
	LimitSteps    = budget.LimitSteps
	LimitDepth    = budget.LimitDepth
	LimitItems    = budget.LimitItems
	LimitBytes    = budget.LimitBytes
	LimitTimeout  = budget.LimitTimeout
	LimitCanceled = budget.LimitCanceled
)

// DefaultMaxDepth is the recursion-depth bound applied to user-declared
// functions when Limits.MaxDepth is unset: runaway self-recursion
// returns a depth ResourceError instead of crashing the process.
const DefaultMaxDepth = budget.DefaultMaxDepth

// ParseMode parses a plan name ("CaQ", "QaC", "QaC+", "QaC++").
func ParseMode(s string) (Mode, error) { return ixcql.ParseMode(s) }

// Engine owns a set of named streams and compiles XCQL queries against
// them. It is safe for concurrent use.
type Engine struct {
	rt *ixcql.Runtime

	regOnce sync.Once
	reg     *registry.Registry
}

// NewEngine returns an empty engine.
func NewEngine() *Engine { return &Engine{rt: ixcql.NewRuntime()} }

// Registry returns the engine's standing-query registry (created on
// first use): register compiled queries with QueryRegistry.Register,
// feed arrivals with QueryRegistry.Apply (or AttachClient/AttachServer),
// and each shared access path evaluates once per arrival regardless of
// how many registrations read it.
func (e *Engine) Registry() *QueryRegistry {
	e.regOnce.Do(func() { e.reg = registry.New(nil) })
	return e.reg
}

// ServeQueryAPI returns an http.Handler exposing the engine's registry
// as a query-and-subscribe service: POST /v1/query registers XCQL text,
// GET /v1/subscribe streams JSON deltas over WebSocket, POST /v1/eval
// runs one-shot queries, GET /v1/registryz reports sharing stats.
func (e *Engine) ServeQueryAPI() *QueryAPI {
	return registry.NewAPI(e.Registry(), e.Compile)
}

// Runtime exposes the underlying compiler runtime for advanced use.
func (e *Engine) Runtime() *ixcql.Runtime { return e.rt }

// RegisterStore makes an existing fragment store queryable as
// stream(name).
func (e *Engine) RegisterStore(name string, st *Store) { e.rt.RegisterStream(name, st) }

// Store returns the store registered under name, or nil.
func (e *Engine) Store(name string) *Store { return e.rt.Store(name) }

// AddDocumentStream fragments doc along the structure, loads the
// fragments into a fresh store and registers it as stream(name). Sibling
// elements of a temporal tag carrying vtFrom annotations are treated as
// versions of one element, so a materialized temporal view round-trips.
func (e *Engine) AddDocumentStream(name string, structure *TagStructure, doc *Node) (*Store, error) {
	fr := fragment.NewFragmenter(structure)
	fr.CoalesceVersions = true
	frags, err := fr.Fragment(doc)
	if err != nil {
		return nil, err
	}
	st := fragment.NewStore(structure)
	if err := st.AddAll(frags); err != nil {
		return nil, err
	}
	e.rt.RegisterStream(name, st)
	return st, nil
}

// AddEmptyStream registers an empty store for a stream whose fragments
// will arrive later (e.g. from a network client).
func (e *Engine) AddEmptyStream(name string, structure *TagStructure) *Store {
	st := fragment.NewStore(structure)
	e.rt.RegisterStream(name, st)
	return st
}

// AttachClient registers a stream client's store under the client's
// stream name.
func (e *Engine) AttachClient(c *Client) { e.rt.RegisterStream(c.Name(), c.Store()) }

// RegisterFunc makes a user function callable from queries.
func (e *Engine) RegisterFunc(name string, f Func) { e.rt.RegisterFunc(name, f) }

// RegisterDoc makes a static document available to doc(uri).
func (e *Engine) RegisterDoc(uri string, doc *Node) { e.rt.RegisterDoc(uri, doc) }

// Compile parses and translates an XCQL query for the given mode.
func (e *Engine) Compile(src string, mode Mode) (*Query, error) { return e.rt.Compile(src, mode) }

// MustCompile compiles or panics.
func (e *Engine) MustCompile(src string, mode Mode) *Query { return e.rt.MustCompile(src, mode) }

// Eval compiles and runs a query once at the evaluation instant, using
// the QaC+ plan.
func (e *Engine) Eval(src string, at time.Time) (Sequence, error) {
	q, err := e.Compile(src, QaCPlus)
	if err != nil {
		return nil, err
	}
	return q.Eval(at)
}

// EvalContext compiles and runs a query once under a context and limits,
// using the QaC+ plan: cancelling ctx (or exceeding lim) aborts the
// evaluation cooperatively with a structured *EvalError.
func (e *Engine) EvalContext(ctx context.Context, src string, at time.Time, lim Limits) (Sequence, error) {
	q, err := e.Compile(src, QaCPlus)
	if err != nil {
		return nil, err
	}
	return q.EvalLimits(ctx, at, lim)
}

// EvalContextStats is EvalContext returning the evaluation's cost profile
// alongside the result. Stats are populated even when the evaluation
// fails, so a tripped budget still shows how far it got.
func (e *Engine) EvalContextStats(ctx context.Context, src string, at time.Time, lim Limits) (Sequence, EvalStats, error) {
	q, err := e.Compile(src, QaCPlus)
	if err != nil {
		return nil, EvalStats{}, err
	}
	seq, err := q.EvalLimits(ctx, at, lim)
	return seq, q.LastStats(), err
}

// SetTraceSink installs (or, with nil, removes) the span sink receiving
// parse/translate/execute/materialize trace events for every compile and
// evaluation on this engine. Tracing is off by default and the disabled
// path adds no allocations.
func (e *Engine) SetTraceSink(s TraceSink) { e.rt.SetTraceSink(s) }

// NewFlightRecorder returns a bounded in-memory tracer. Attach it to the
// pieces whose spans should join one tree: Server/Client/SegStore/
// ContinuousQuery SetFlightRecorder, Engine.SetFlightRecorder for the
// standing-query registry. The zero-value options give a 256-trace ring
// with 1-in-16 uniform sampling plus always-kept p99/flagged traces.
func NewFlightRecorder(opts FlightRecorderOptions) *FlightRecorder {
	return obs.NewFlightRecorder(opts)
}

// SetFlightRecorder wires a flight recorder into the engine's standing-
// query registry: traced arrivals record registry.eval/fanout spans and
// deliveries carry the trace id (RegistryResult.TraceID, WireResult
// "trace"). nil detaches. The engine's QueryAPI exposes the recorder at
// GET /v1/tracez via QueryAPI.SetFlightRecorder.
func (e *Engine) SetFlightRecorder(rec *FlightRecorder) {
	e.Registry().SetFlightRecorder(rec)
}

// DefaultRegistry is the process-wide metrics registry; streamdemo and
// other long-running hosts register their servers and clients here.
func DefaultRegistry() *Registry { return obs.Default }

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// ResourceCause returns the tripped resource limit behind err, if any:
// a convenience over errors.As for the common "which limit killed this
// evaluation" question.
func ResourceCause(err error) (*ResourceError, bool) { return ixcql.ResourceCause(err) }

// SetMaxConcurrentEvals bounds concurrent query evaluations across the
// engine (n <= 0 means unlimited). Over the bound, evaluations are
// rejected fast with an *OverloadError instead of queuing unboundedly —
// admission control for heavily loaded servers.
func (e *Engine) SetMaxConcurrentEvals(n int) { e.rt.SetMaxConcurrentEvals(n) }

// SetParallelism sets the default worker count queries compiled on this
// engine use to resolve independent holes concurrently (n <= 1 =
// sequential). Results are byte-identical to sequential execution; only
// wall time and the EvalStats parallel counters change. Individual
// queries can override with Query.WithParallelism.
func (e *Engine) SetParallelism(n int) { e.rt.SetParallelism(n) }

// SetCache gives the engine an LRU filler-resolution cache of the given
// entry capacity, shared by every query compiled on it (size <= 0
// removes the cache). Cached subtrees are invalidated automatically
// when their stream's store advances. Individual queries can override
// with Query.WithCache.
func (e *Engine) SetCache(size int) { e.rt.SetCache(size) }

// Cache returns the engine's shared filler-resolution cache, or nil.
func (e *Engine) Cache() *Cache { return e.rt.Cache() }

// MaterializeView reconstructs the full temporal view of a stream at the
// evaluation instant (the paper's temporalize, §5).
func (e *Engine) MaterializeView(name string, at time.Time) (*Node, error) {
	st := e.rt.Store(name)
	if st == nil {
		return nil, fmt.Errorf("xcql: stream %q is not registered", name)
	}
	return temporal.Temporalize(st, at)
}

// --- constructors re-exported from the internal packages ------------------

// ParseTagStructure parses the <stream:structure> wire form.
func ParseTagStructure(src string) (*TagStructure, error) { return tagstruct.ParseString(src) }

// MustParseTagStructure parses or panics.
func MustParseTagStructure(src string) *TagStructure { return tagstruct.MustParseString(src) }

// InferTagStructure derives a tag structure from a sample document.
func InferTagStructure(doc *Node) (*TagStructure, error) { return tagstruct.Infer(doc) }

// ParseDocument parses an XML document.
func ParseDocument(src string) (*Node, error) { return xmldom.ParseString(src) }

// MustParseDocument parses or panics.
func MustParseDocument(src string) *Node { return xmldom.MustParseString(src) }

// NewFragmenter returns a fragmenter for the structure.
func NewFragmenter(s *TagStructure) *Fragmenter { return fragment.NewFragmenter(s) }

// NewStore returns an empty fragment store.
func NewStore(s *TagStructure) *Store { return fragment.NewStore(s) }

// NewFragment builds a fragment.
func NewFragment(fillerID, tsid int, validTime time.Time, payload *Node) *Fragment {
	return fragment.New(fillerID, tsid, validTime, payload)
}

// NewHole builds a <hole id tsid/> placeholder element.
func NewHole(fillerID, tsid int) *Node { return fragment.NewHole(fillerID, tsid) }

// ParseFragment parses the <filler> wire form.
func ParseFragment(src string) (*Fragment, error) { return fragment.Parse(src) }

// NewServer creates a broadcast server for a named stream.
func NewServer(name string, s *TagStructure) *Server { return stream.NewServer(name, s) }

// NewClient creates a receive-only stream client.
func NewClient(name string, s *TagStructure) *Client { return stream.NewClient(name, s) }

// DialTCP registers with a TCP stream server and returns a consuming
// client with automatic reconnect enabled.
func DialTCP(addr string) (*Client, error) { return stream.DialTCP(addr) }

// Dial registers with a TCP stream server under explicit reconnect
// options.
func Dial(addr string, opts DialOptions) (*Client, error) { return stream.Dial(addr, opts) }

// ServeTCP serves a stream server's fragment flow on a listener.
func ServeTCP(s *Server, ln net.Listener) error { return stream.ServeTCP(s, ln) }

// ServeTCPOptions is ServeTCP with tuning knobs and fault injection.
func ServeTCPOptions(s *Server, ln net.Listener, opts ServeOptions) error {
	return stream.ServeTCPOptions(s, ln, opts)
}

// NewFaultInjector builds a seeded transport-fault injector for
// ServeOptions.Faults.
func NewFaultInjector(plan FaultPlan) *FaultInjector { return stream.NewFaultInjector(plan) }

// OpenSegStore opens (creating if needed) a durable segment store rooted
// at dir, running crash recovery first: torn tails are truncated,
// corrupt files are quarantined-and-salvaged, and the report says exactly
// what was found — recovery never silently narrows the data.
func OpenSegStore(dir string, opts SegStoreOptions) (*SegStore, *RecoveryReport, error) {
	return segstore.Open(dir, opts)
}

// RecoverServer rebuilds a stream server from its durable log after a
// restart: sequence numbers continue monotonically, the replay window is
// reseeded, and the log stays attached for write-through.
func RecoverServer(name string, s *TagStructure, d DurableLog) (*Server, error) {
	return stream.RecoverServer(name, s, d)
}

// NewCompactor builds a background maintenance runner over the given
// steps (interval <= 0 means manual-only via RunOnce).
func NewCompactor(interval time.Duration, steps ...func() error) *Compactor {
	return fragment.NewCompactor(interval, steps...)
}

// NewContinuousQuery wraps a compiled query for continuous evaluation.
func NewContinuousQuery(q *Query, onResult func(Result)) *ContinuousQuery {
	return stream.NewContinuousQuery(q, onResult)
}

// NewHistogram returns an empty latency histogram.
func NewHistogram() *Histogram { return obs.NewHistogram() }

// WatermarkLag is the event-time distance between a server's and a
// client's watermark: how stale the client's view of the stream is.
func WatermarkLag(s *Server, c *Client) time.Duration { return stream.WatermarkLag(s, c) }

// ParseDateTime parses an XCQL time literal ("now", "start", ISO-8601).
func ParseDateTime(s string) (DateTime, error) { return xtime.Parse(s) }

// ParseDuration parses an ISO-8601 duration literal such as PT1M.
func ParseDuration(s string) (Duration, error) { return xtime.ParseDuration(s) }

// FormatSequence renders a result sequence, one item per line: nodes as
// XML, atomics as their string value.
func FormatSequence(seq Sequence) string {
	var b strings.Builder
	for i, it := range seq {
		if i > 0 {
			b.WriteByte('\n')
		}
		if n, ok := it.(*Node); ok {
			b.WriteString(n.String())
		} else {
			b.WriteString(xq.StringValue(it))
		}
	}
	return b.String()
}

// StringValue returns the string value of one item.
func StringValue(it Item) string { return xq.StringValue(it) }

// NumberValue converts an item to a number (NaN when unconvertible).
func NumberValue(it Item) float64 { return xq.NumberValue(it) }
