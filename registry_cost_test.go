package xcql_test

// Shared-cost monotonicity: the registry's reason to exist is that K
// standing queries sharing an access path cost ~1 query's evaluation
// per arriving fragment, not K of them. These tests extend the counter-
// monotonicity suite to the sharing layer: the group's cost counters
// (FillersScanned, HandlerInvocations) after a replay must be ~flat in
// K, and BenchmarkRegistryFanout exposes the same claim as a benchmark
// grid (shared vs independent × K) for BENCH_pr8.json.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"xcql"
	"xcql/internal/fragment"
	"xcql/internal/tagstruct"
	"xcql/internal/xmldom"
)

// registryCostFixture is one credit stream preloaded with events plus a
// tail of arrivals to replay, and an engine wired to it.
type registryCostFixture struct {
	engine   *xcql.Engine
	store    *xcql.Store
	arrivals []*xcql.Fragment
	at       time.Time
}

// newRegistryCostFixture builds a store with preload transactions
// already ingested and tail arrival fragments prebuilt (every filler
// announced up front, so arrivals are pure event ingest).
func newRegistryCostFixture(tb testing.TB, preload, tail int) *registryCostFixture {
	tb.Helper()
	structure, err := tagstruct.ParseString(benchCreditStructure)
	if err != nil {
		tb.Fatal(err)
	}
	st := fragment.NewStore(structure)
	base := time.Date(2003, time.November, 1, 0, 0, 0, 0, time.UTC)
	el := func(src string) *xmldom.Node { return xmldom.MustParseString(src).Root() }
	var holes strings.Builder
	holes.WriteString(`<hole id="2" tsid="4"/>`)
	for i := 0; i < preload+tail; i++ {
		fmt.Fprintf(&holes, `<hole id="%d" tsid="5"/>`, 100+i)
	}
	mustAddT(tb, st, fragment.New(0, 1, base, el(`<creditAccounts><hole id="1" tsid="2"/></creditAccounts>`)))
	mustAddT(tb, st, fragment.New(1, 2, base, el(`<account id="1234"><customer>J</customer>`+holes.String()+`</account>`)))
	mustAddT(tb, st, fragment.New(2, 4, base, el(`<creditLimit>5000</creditLimit>`)))
	newTx := func(i int) *xcql.Fragment {
		tx := fmt.Sprintf(`<transaction id="t%d"><vendor>V</vendor><amount>%d</amount></transaction>`, i, 10+i%90)
		return fragment.New(100+i, 5, base.Add(time.Duration(i)*time.Second), el(tx))
	}
	for i := 0; i < preload; i++ {
		mustAddT(tb, st, newTx(i))
	}
	arrivals := make([]*xcql.Fragment, tail)
	for i := range arrivals {
		arrivals[i] = newTx(preload + i)
	}
	e := xcql.NewEngine()
	e.RegisterStore("credit", st)
	return &registryCostFixture{
		engine:   e,
		store:    st,
		arrivals: arrivals,
		at:       base.Add(time.Duration(preload) * time.Second),
	}
}

func mustAddT(tb testing.TB, st *xcql.Store, f *xcql.Fragment) {
	tb.Helper()
	if err := st.Add(f); err != nil {
		tb.Fatal(err)
	}
}

const registryCostQuery = `for $t in stream("credit")//transaction return $t`

// replayRegistryCost registers K copies of the query and replays the
// fixture's arrivals through the registry, returning the sharing
// group's accumulated stats.
func replayRegistryCost(tb testing.TB, fx *registryCostFixture, k int, incremental bool) xcql.RegistryGroupStats {
	tb.Helper()
	r := fx.engine.Registry()
	at := fx.at
	r.SetClock(func() time.Time { return at })
	regs := make([]*xcql.QueryRegistration, k)
	for i := range regs {
		q, err := fx.engine.Compile(registryCostQuery, xcql.QaCPlus)
		if err != nil {
			tb.Fatal(err)
		}
		reg, err := r.Register(q, xcql.RegistryOptions{
			Incremental: incremental,
			OnResult:    func(xcql.RegistryResult) {},
		})
		if err != nil {
			tb.Fatal(err)
		}
		regs[i] = reg
	}
	for _, f := range fx.arrivals {
		mustAddT(tb, fx.store, f)
		if f.ValidTime.After(at) {
			at = f.ValidTime
		}
		r.Apply(f)
	}
	groups := r.Groups()
	if len(groups) != 1 {
		tb.Fatalf("expected 1 sharing group, got %d", len(groups))
	}
	if got := groups[0].Members; got != k {
		tb.Fatalf("group members = %d, want %d", got, k)
	}
	for _, reg := range regs {
		reg.Close()
	}
	return groups[0]
}

// TestRegistrySharedCostMonotonic pins the sharing claim on the
// counters: a group of K=8 registrations over one access path must
// report per-replay FillersScanned and HandlerInvocations within 1.5×
// of a single registration — ~1× cost, not K× — in both incremental
// (unit sharing) and full (plan dedup) mode, with the saved work
// visible in SharedSaved.
func TestRegistrySharedCostMonotonic(t *testing.T) {
	const k = 8
	for _, tc := range []struct {
		name        string
		incremental bool
	}{
		{"incremental", true},
		{"full", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			one := replayRegistryCost(t, newRegistryCostFixture(t, 100, 50), 1, tc.incremental)
			many := replayRegistryCost(t, newRegistryCostFixture(t, 100, 50), k, tc.incremental)
			check := func(name string, got, base int64) {
				t.Helper()
				if base == 0 {
					t.Fatalf("%s: single-registration baseline is 0 — fixture measures nothing", name)
				}
				// ~flat: well under 1.5× one query, nowhere near K×
				if got*2 > base*3 {
					t.Errorf("%s: group cost with %d members = %d, want ~%d (1x); sharing is not deduplicating",
						name, k, got, base)
				}
			}
			check("FillersScanned", many.Stats.FillersScanned, one.Stats.FillersScanned)
			if tc.incremental {
				check("HandlerInvocations", many.Stats.HandlerInvocations, one.Stats.HandlerInvocations)
				if many.SharedUnits == 0 {
					t.Errorf("SharedUnits = 0: no unit signature is held by more than one member")
				}
			}
			if many.SharedSaved == 0 {
				t.Errorf("SharedSaved = 0 with %d members sharing one path", k)
			}
			if one.SharedSaved != 0 {
				t.Errorf("SharedSaved = %d with a single member: nothing to share", one.SharedSaved)
			}
		})
	}

	// Identical registrations share a whole engine, so the per-arrival
	// unit memo only proves itself across DISTINCT plans that decompose
	// into an overlapping piece: a sequence query carries the same
	// //transaction unit as the plain query, and the second engine to
	// advance must hit the first engine's unit results.
	t.Run("cross-plan-unit-sharing", func(t *testing.T) {
		fx := newRegistryCostFixture(t, 100, 50)
		r := fx.engine.Registry()
		at := fx.at
		r.SetClock(func() time.Time { return at })
		srcs := []string{
			registryCostQuery,
			`(stream("credit")//transaction, stream("credit")//transaction/amount)`,
		}
		for _, src := range srcs {
			q, err := fx.engine.Compile(src, xcql.QaCPlus)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.Register(q, xcql.RegistryOptions{
				Incremental: true,
				OnResult:    func(xcql.RegistryResult) {},
			}); err != nil {
				t.Fatal(err)
			}
		}
		for _, f := range fx.arrivals {
			mustAddT(t, fx.store, f)
			if f.ValidTime.After(at) {
				at = f.ValidTime
			}
			r.Apply(f)
		}
		var hits, units int64
		for _, g := range r.Groups() {
			hits += g.Stats.SharedUnitHits
			units += int64(g.SharedUnits)
		}
		if hits == 0 {
			t.Errorf("SharedUnitHits = 0: the shared pass never served a unit across distinct plans")
		}
		if units == 0 {
			t.Errorf("SharedUnits = 0: no unit signature is held by more than one member")
		}
	})
}

// BenchmarkRegistryFanout is the sharing headline for BENCH_pr8.json:
// per-fragment cost with K standing queries over one shared access
// path, registry-shared vs K independent continuous queries. Shared
// mode should stay ~flat in K (handlers/op ~1×); independent mode grows
// ~linearly.
func BenchmarkRegistryFanout(b *testing.B) {
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shared/k=%d", k), func(b *testing.B) {
			fx := newRegistryCostFixture(b, 100, b.N)
			r := fx.engine.Registry()
			at := fx.at
			r.SetClock(func() time.Time { return at })
			var delivered int64
			for i := 0; i < k; i++ {
				q, err := fx.engine.Compile(registryCostQuery, xcql.QaCPlus)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := r.Register(q, xcql.RegistryOptions{
					Incremental: true,
					OnResult:    func(xcql.RegistryResult) { delivered++ },
				}); err != nil {
					b.Fatal(err)
				}
			}
			// seed the standing state outside the timer
			r.Evaluate()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := fx.arrivals[i]
				mustAddT(b, fx.store, f)
				if f.ValidTime.After(at) {
					at = f.ValidTime
				}
				r.Apply(f)
			}
			b.StopTimer()
			g := r.Groups()[0]
			b.ReportMetric(float64(g.Stats.HandlerInvocations)/float64(b.N), "handlers/op")
			b.ReportMetric(float64(g.SharedSaved)/float64(b.N), "shared-saved/op")
			b.ReportMetric(float64(delivered)/float64(b.N), "fanout/op")
		})
		b.Run(fmt.Sprintf("independent/k=%d", k), func(b *testing.B) {
			fx := newRegistryCostFixture(b, 100, b.N)
			at := fx.at
			cqs := make([]*xcql.ContinuousQuery, k)
			var handlers int64
			queries := make([]*xcql.Query, k)
			for i := range cqs {
				q, err := fx.engine.Compile(registryCostQuery, xcql.QaCPlus)
				if err != nil {
					b.Fatal(err)
				}
				queries[i] = q
				cq := xcql.NewContinuousQuery(q, func(xcql.Result) {})
				cq.Clock = func() time.Time { return at }
				cq.WithIncremental(true)
				if err := cq.EvaluateFragment(nil); err != nil {
					b.Fatal(err)
				}
				cqs[i] = cq
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := fx.arrivals[i]
				mustAddT(b, fx.store, f)
				if f.ValidTime.After(at) {
					at = f.ValidTime
				}
				for _, cq := range cqs {
					if err := cq.EvaluateFragment(f); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			for _, q := range queries {
				handlers += q.LastStats().HandlerInvocations
			}
			b.ReportMetric(float64(handlers)/float64(b.N), "handlers-last/op")
		})
	}
}
