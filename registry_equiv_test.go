package xcql_test

import (
	"fmt"
	"testing"
	"time"

	"xcql"
	"xcql/internal/fragment"
	"xcql/internal/genstore"
)

// The registry-equivalence cell of the differential harness: every
// generated store/query pair is replayed fragment by fragment through
// the multi-tenant registry with N=2..32 overlapping standing
// registrations sharing ONE store and one evaluation pass per arrival —
// and each registration's per-arrival delta trace and final standing
// result must be byte-identical to an INDEPENDENT ContinuousQuery
// replaying the same history on its own private store. Sharing (full-
// mode plan dedup, incremental unit memoization across queries) is an
// execution strategy, not a semantics change; this suite pins that.

// regSpec is one standing registration in a registry replay.
type regSpec struct {
	src  string
	mode xcql.Mode
	inc  bool
}

func (s regSpec) String() string {
	kind := "full"
	if s.inc {
		kind = "inc"
	}
	return fmt.Sprintf("%s/%s", s.mode, kind)
}

// replayRegistry feeds frags one at a time into a single shared store
// and registry carrying every spec as a live registration, with the
// clock pinned to the running maximum validTime (the same pinning
// replayCQ applies). It returns one trace per spec, in spec order.
func replayRegistry(t *testing.T, ins *genstore.Instance, frags []*xcql.Fragment,
	specs []regSpec, cfg execConfig) []replayTrace {
	t.Helper()
	var st *xcql.Store
	if ins.Profile.Scan {
		st = fragment.NewScanStore(ins.Structure)
	} else {
		st = fragment.NewStore(ins.Structure)
	}
	e := xcql.NewEngine()
	if !cfg.perQuery {
		e.SetParallelism(cfg.parallelism)
		e.SetCache(cfg.cacheSize)
	}
	e.RegisterStore("s", st)
	var at time.Time
	r := e.Registry()
	r.SetClock(func() time.Time { return at })

	traces := make([]replayTrace, len(specs))
	lastItems := make([]xcql.Sequence, len(specs))
	regs := make([]*xcql.QueryRegistration, len(specs))
	for i, spec := range specs {
		q, err := e.Compile(spec.src, spec.mode)
		if err != nil {
			t.Fatalf("compile %q under %s: %v", spec.src, spec.mode, err)
		}
		if cfg.perQuery {
			q = q.WithParallelism(cfg.parallelism).WithCache(cfg.cacheSize)
		}
		i := i
		reg, err := r.Register(q, xcql.RegistryOptions{
			Incremental: spec.inc,
			OnResult: func(res xcql.RegistryResult) {
				if res.Err != nil {
					// same marker replayCQ records when EvaluateFragment
					// returns an error: both sides must fail at exactly
					// the same arrivals
					traces[i].deltas = append(traces[i].deltas, "!error")
					return
				}
				traces[i].deltas = append(traces[i].deltas, xcql.FormatSequence(res.Delta))
				lastItems[i] = res.Items
			},
		})
		if err != nil {
			t.Fatalf("register %s: %v", spec, err)
		}
		regs[i] = reg
	}
	for _, f := range frags {
		if err := st.Add(f); err != nil {
			t.Fatalf("add filler %d: %v", f.FillerID, err)
		}
		if f.ValidTime.After(at) {
			at = f.ValidTime
		}
		r.Apply(f)
	}
	for i, spec := range specs {
		if spec.inc {
			traces[i].final = xcql.FormatSequence(regs[i].ItemsSnapshot())
		} else {
			traces[i].final = xcql.FormatSequence(lastItems[i])
		}
		regs[i].Close()
	}
	return traces
}

// registrySpecs builds the overlapping registration set for one
// instance: every generated query enters once per {full, incremental}
// under a rotating plan, then the set is padded with duplicate
// registrations (cycling queries, plans and modes) up to n — the
// duplicates are what force full-plan sharing and cross-query unit
// sharing inside one group.
func registrySpecs(ins *genstore.Instance, n int) []regSpec {
	var specs []regSpec
	for j, q := range ins.Queries {
		mode := harnessModes[j%len(harnessModes)]
		specs = append(specs, regSpec{src: q.Src, mode: mode, inc: false})
		specs = append(specs, regSpec{src: q.Src, mode: mode, inc: true})
	}
	for j := 0; len(specs) < n; j++ {
		q := ins.Queries[j%len(ins.Queries)]
		specs = append(specs, regSpec{
			src:  q.Src,
			mode: harnessModes[(j/2)%len(harnessModes)],
			inc:  j%2 == 1,
		})
	}
	if len(specs) > n {
		specs = specs[:n]
	}
	return specs
}

// TestRegistryEquivalence replays 200+ generated store/query pairs (40
// under -short) through the registry and pins every registration's
// delta stream and final standing result byte-identical to independent
// continuous queries across {CaQ,QaC,QaC+} × {full,incremental} ×
// {seq,par4}.
func TestRegistryEquivalence(t *testing.T) {
	minPairs := 200
	if testing.Short() {
		minPairs = 40
	}
	// registration-count schedule: cycles the required N=2..32 band
	nSchedule := []int{2, 6, 12, 32, 8, 16, 4, 24}
	cfgs := []execConfig{execConfigs[0], execConfigs[2]} // seq, par4
	pairs, inst := 0, 0
	for seed := int64(1); pairs < minPairs; seed++ {
		if seed > 100 {
			t.Fatalf("generator exhausted 100 seeds with only %d pairs", pairs)
		}
		for _, p := range harnessProfiles(seed) {
			ins, err := genstore.Generate(p)
			if err != nil {
				t.Fatalf("%s: generate: %v", p, err)
			}
			n := nSchedule[inst%len(nSchedule)]
			cfg := cfgs[inst%len(cfgs)]
			inst++
			specs := registrySpecs(ins, n)
			traces := replayRegistry(t, ins, ins.Fragments, specs, cfg)
			// reference replays are cached per distinct spec: duplicate
			// registrations must match the same independent baseline
			refs := make(map[regSpec]replayTrace)
			verified := make(map[string]bool)
			for i, spec := range specs {
				ref, ok := refs[spec]
				if !ok {
					ref = replayCQ(t, ins, ins.Fragments, spec.src, spec.mode, cfg, spec.inc)
					refs[spec] = ref
				}
				if got, want := traces[i].String(), ref.String(); got != want {
					t.Fatalf("%s reg[%d] %s under %s diverged from independent ContinuousQuery\nindependent:\n%s\nregistry:\n%s",
						p, i, spec, cfg.name, harnessTruncate(want), harnessTruncate(got))
				}
				verified[spec.src] = true
			}
			// a pair counts only when the instance's replay actually
			// verified that query (small N truncates the spec list)
			pairs += len(verified)
			if pairs >= minPairs {
				break
			}
		}
	}
	t.Logf("verified %d registry store/query pairs (%d registry replays)", pairs, inst)
}
