package xcql_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"xcql"
	"xcql/internal/fragment"
	"xcql/internal/genstore"
)

// The incremental cell of the differential harness: every generated
// store/query pair is REPLAYED fragment by fragment through a continuous
// query — once in full re-evaluation mode (the reference), once with
// WithIncremental(true) — and the two must agree byte for byte on every
// per-arrival delta and on the final standing result. The incremental
// replays run under every plan × parallelism × cache combination; the
// engine's decomposition differs radically per plan (QaC+ indexes by
// tsid, CaQ degrades to whole-plan recomputation), so identical output
// across the grid pins the tentpole claim: incremental evaluation is an
// execution strategy, not a semantics change.

// replayTrace is the observable output of one fragment-by-fragment
// replay: the serialized delta of every arrival and the final standing
// result.
type replayTrace struct {
	deltas []string
	final  string
}

func (tr replayTrace) String() string {
	return strings.Join(tr.deltas, "\n--\n") + "\n==\n" + tr.final
}

// replayCQ feeds frags one at a time into a fresh store and continuous
// query compiled under (mode, cfg), with the evaluation clock pinned to
// the running maximum validTime (fragments never "un-happen"; reordered
// histories replay with a monotone clock).
func replayCQ(t *testing.T, ins *genstore.Instance, frags []*xcql.Fragment,
	src string, mode xcql.Mode, cfg execConfig, incremental bool) replayTrace {
	t.Helper()
	var st *xcql.Store
	if ins.Profile.Scan {
		st = fragment.NewScanStore(ins.Structure)
	} else {
		st = fragment.NewStore(ins.Structure)
	}
	e := xcql.NewEngine()
	if !cfg.perQuery {
		e.SetParallelism(cfg.parallelism)
		e.SetCache(cfg.cacheSize)
	}
	e.RegisterStore("s", st)
	q, err := e.Compile(src, mode)
	if err != nil {
		t.Fatalf("compile %q under %s: %v", src, mode, err)
	}
	if cfg.perQuery {
		q = q.WithParallelism(cfg.parallelism).WithCache(cfg.cacheSize)
	}
	var tr replayTrace
	var lastItems xcql.Sequence
	var at time.Time
	cq := xcql.NewContinuousQuery(q, func(r xcql.Result) {
		tr.deltas = append(tr.deltas, xcql.FormatSequence(r.Delta))
		lastItems = r.Items
	})
	cq.Clock = func() time.Time { return at }
	if incremental {
		cq.WithIncremental(true)
	}
	for _, f := range frags {
		if err := st.Add(f); err != nil {
			t.Fatalf("add filler %d: %v", f.FillerID, err)
		}
		if f.ValidTime.After(at) {
			at = f.ValidTime
		}
		// an evaluation error is a legitimate outcome (e.g. CaQ's fn:view
		// before the root filler arrives in a reordered history); record a
		// marker so both modes must fail at exactly the same arrivals
		if err := cq.EvaluateFragment(f); err != nil {
			tr.deltas = append(tr.deltas, "!error")
		}
	}
	if incremental {
		tr.final = xcql.FormatSequence(cq.ItemsSnapshot())
	} else {
		tr.final = xcql.FormatSequence(lastItems)
	}
	return tr
}

// TestDiffHarnessIncremental replays 200+ generated store/query pairs
// (40 under -short) and pins incremental continuous evaluation
// byte-identical to full re-evaluation across the whole strategy grid.
func TestDiffHarnessIncremental(t *testing.T) {
	minPairs := 200
	if testing.Short() {
		minPairs = 40
	}
	pairs := 0
	for seed := int64(1); pairs < minPairs; seed++ {
		if seed > 100 {
			t.Fatalf("generator exhausted 100 seeds with only %d pairs", pairs)
		}
		for _, p := range harnessProfiles(seed) {
			pairs += runIncrementalInstance(t, p)
			if pairs >= minPairs {
				break
			}
		}
	}
	t.Logf("verified %d incremental store/query pairs", pairs)
}

// runIncrementalInstance replays one generated history per query: full
// re-evaluation across the plan grid as the reference, incremental
// across plan × parallelism × cache.
func runIncrementalInstance(t *testing.T, p genstore.Profile) int {
	t.Helper()
	ins, err := genstore.Generate(p)
	if err != nil {
		t.Fatalf("%s: generate: %v", p, err)
	}
	for _, query := range ins.Queries {
		var baseline replayTrace
		haveBaseline := false
		check := func(tr replayTrace, label string) {
			t.Helper()
			if !haveBaseline {
				baseline, haveBaseline = tr, true
				return
			}
			if got, want := tr.String(), baseline.String(); got != want {
				t.Fatalf("%s/%s: %s diverged from full baseline\nbaseline:\n%s\ngot:\n%s",
					p, query.Name, label, harnessTruncate(want), harnessTruncate(got))
			}
		}
		for _, mode := range harnessModes {
			// full re-evaluation references, sequential and parallel
			for _, cfg := range []execConfig{execConfigs[0], execConfigs[2]} {
				tr := replayCQ(t, ins, ins.Fragments, query.Src, mode, cfg, false)
				check(tr, fmt.Sprintf("full/%s/%s", mode, cfg.name))
			}
			for _, cfg := range execConfigs {
				tr := replayCQ(t, ins, ins.Fragments, query.Src, mode, cfg, true)
				check(tr, fmt.Sprintf("inc/%s/%s", mode, cfg.name))
			}
		}
	}
	return len(ins.Queries)
}

// TestIncrementalArrivalOrder is the arrival-order metamorphic suite:
// the same fragment set replayed in document order, reverse order, and
// seeded shuffles. Per order, incremental and full replays must agree
// byte for byte (the differential property). Across orders, the FINAL
// standing result must be identical — arrival order never leaks into
// the standing state — and nothing may appear in a final result that
// was never emitted as a delta (a lost emission could silently narrow
// what a consumer ever sees).
//
// The raw cumulative delta SET is deliberately not compared across
// orders: transiently emitted items differ legitimately (e.g. a version
// carries vtTo="now" until its successor arrives — in one order the
// successor is already there, in another the "now"-annotated item is
// emitted first and superseded later). DESIGN.md documents this.
func TestIncrementalArrivalOrder(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, p := range []genstore.Profile{
			{Seed: seed},
			{Seed: seed, Duplicates: true, Drops: true},
		} {
			ins, err := genstore.Generate(p)
			if err != nil {
				t.Fatalf("%s: generate: %v", p, err)
			}
			orders := map[string][]*xcql.Fragment{
				"doc":      ins.Fragments,
				"reverse":  ins.ReversedFragments(),
				"shuffle1": ins.ShuffledFragments(seed * 101),
				"shuffle2": ins.ShuffledFragments(seed*101 + 1),
			}
			for _, query := range ins.Queries {
				// finals is keyed mode/order: every leg — either plan,
				// any arrival order — must land on one standing result.
				// Running QaC++ through the same grid is the label
				// stability metamorphic: labels are minted from
				// version-ordered groups, so a reordered history must
				// label (and therefore assemble) identically.
				finals := make(map[string]string)
				for _, mode := range []xcql.Mode{xcql.QaCPlus, xcql.QaCPlusPlus} {
					for name, frags := range orders {
						full := replayCQ(t, ins, frags, query.Src, mode, execConfigs[0], false)
						inc := replayCQ(t, ins, frags, query.Src, mode, execConfigs[0], true)
						if got, want := inc.String(), full.String(); got != want {
							t.Fatalf("%s/%s/%s order=%s: incremental diverged from full\nfull:\n%s\ninc:\n%s",
								p, query.Name, mode, name, harnessTruncate(want), harnessTruncate(got))
						}
						// no silent appearance: every line of the final result
						// was emitted in some delta of this replay
						emitted := make(map[string]bool)
						for _, d := range inc.deltas {
							for _, line := range strings.Split(d, "\n") {
								emitted[line] = true
							}
						}
						for _, line := range strings.Split(inc.final, "\n") {
							if line != "" && !emitted[line] {
								t.Fatalf("%s/%s/%s order=%s: final item never emitted as delta: %s",
									p, query.Name, mode, name, harnessTruncate(line))
							}
						}
						finals[mode.String()+"/"+name] = inc.final
					}
				}
				want := finals["QaC+/doc"]
				for name, got := range finals {
					if got != want {
						t.Fatalf("%s/%s: final standing result depends on arrival order or plan\nQaC+/doc:\n%s\n%s:\n%s",
							p, query.Name, harnessTruncate(want), name, harnessTruncate(got))
					}
				}
			}
		}
	}
}

// FuzzIncrementalArrival fuzzes the differential property: an arbitrary
// (seed, permutation, profile-flag) triple generates a history, shuffles
// its arrival order, and replays it incrementally against the full
// re-evaluation reference.
func FuzzIncrementalArrival(f *testing.F) {
	f.Add(int64(1), int64(1), uint8(0))
	f.Add(int64(2), int64(7), uint8(3))
	f.Add(int64(5), int64(42), uint8(5))
	f.Add(int64(9), int64(13), uint8(7))
	f.Fuzz(func(t *testing.T, seed, permSeed int64, flags uint8) {
		p := genstore.Profile{
			Seed:       seed%1000 + 1,
			Reorder:    flags&1 != 0,
			Duplicates: flags&2 != 0,
			Drops:      flags&4 != 0,
			Scan:       flags&8 != 0,
		}
		ins, err := genstore.Generate(p)
		if err != nil {
			t.Skip()
		}
		frags := ins.ShuffledFragments(permSeed)
		// one query per fuzz input keeps executions fast; rotate through
		// the battery so every query form gets coverage
		query := ins.Queries[int(uint64(permSeed)%uint64(len(ins.Queries)))]
		mode := harnessModes[int(uint8(flags>>4))%len(harnessModes)]
		full := replayCQ(t, ins, frags, query.Src, mode, execConfigs[0], false)
		inc := replayCQ(t, ins, frags, query.Src, mode, execConfigs[0], true)
		if got, want := inc.String(), full.String(); got != want {
			t.Fatalf("%s/%s/%s: incremental diverged from full\nfull:\n%s\ninc:\n%s",
				p, query.Name, mode, harnessTruncate(want), harnessTruncate(got))
		}
	})
}
