package xcql_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"xcql"
)

// bigEngine builds an engine over a generated stream large enough that
// a nested-loop query runs long: ~1200 items under a flat root.
func bigEngine(t testing.TB) *xcql.Engine {
	t.Helper()
	const wire = `<stream:structure>
<tag type="snapshot" id="1" name="items">
  <tag type="event" id="2" name="item">
    <tag type="snapshot" id="3" name="v"/>
  </tag>
</tag>
</stream:structure>`
	var b strings.Builder
	b.WriteString(`<items>`)
	for i := 0; i < 1200; i++ {
		fmt.Fprintf(&b, `<item id="%d" vtFrom="2003-01-01T00:00:00" vtTo="2003-01-01T00:00:00"><v>%d</v></item>`, i, i)
	}
	b.WriteString(`</items>`)
	e := xcql.NewEngine()
	structure, err := xcql.ParseTagStructure(wire)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xcql.ParseDocument(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddDocumentStream("big", structure, doc); err != nil {
		t.Fatal(err)
	}
	return e
}

// slowQuery is a quadratic cross join over the big stream — far too
// slow to finish before any sane deadline.
const slowQuery = `for $a in stream("big")//item for $b in stream("big")//item where $a/v = $b/v return $a`

// Cancellation of an in-flight evaluation must return promptly — the
// issue's bar is under 100ms from cancel to return — and identify
// context.Canceled.
func TestCancelReturnsPromptly(t *testing.T) {
	e := bigEngine(t)
	q, err := e.Compile(slowQuery, xcql.QaCPlus)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		err     error
		elapsed time.Duration
	}
	done := make(chan outcome, 1)
	canceledAt := make(chan time.Time, 1)
	go func() {
		_, err := q.EvalContext(ctx, at)
		done <- outcome{err: err, elapsed: time.Since(<-canceledAt)}
	}()
	// Let the evaluation get properly underway, then pull the plug.
	time.Sleep(50 * time.Millisecond)
	canceledAt <- time.Now()
	cancel()
	select {
	case o := <-done:
		if o.err == nil {
			t.Fatal("canceled evaluation returned success")
		}
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("want errors.Is(err, context.Canceled), got %v", o.err)
		}
		if o.elapsed > 100*time.Millisecond {
			t.Fatalf("cancel took %v, want < 100ms", o.elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evaluation never returned after cancel")
	}

	// The engine answers normal queries immediately afterwards.
	seq, err := e.Eval(`count(stream("big")//item)`, at)
	if err != nil {
		t.Fatalf("engine unusable after cancel: %v", err)
	}
	if xcql.StringValue(seq[0]) != "1200" {
		t.Fatalf("count = %v", seq[0])
	}
}

// A runaway query is killed by its deadline under every plan, the error
// names the tripped limit, and the engine stays fully usable: the same
// probe query returns identical results before and after each kill.
func TestEngineSurvivesRunawayQuery(t *testing.T) {
	e := bigEngine(t)
	const probe = `count(stream("big")//item)`
	before, err := e.Eval(probe, at)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []xcql.Mode{xcql.CaQ, xcql.QaC, xcql.QaCPlus} {
		q, err := e.Compile(slowQuery, mode)
		if err != nil {
			t.Fatalf("%v compile: %v", mode, err)
		}
		q.Limits = xcql.Limits{Timeout: 30 * time.Millisecond}
		start := time.Now()
		_, err = q.Eval(at)
		if err == nil {
			t.Fatalf("%v: runaway query finished unexpectedly", mode)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("%v: deadline kill took %v", mode, elapsed)
		}
		re, ok := xcql.ResourceCause(err)
		if !ok {
			t.Fatalf("%v: want resource cause, got %v", mode, err)
		}
		if re.Limit != xcql.LimitTimeout {
			t.Fatalf("%v: want timeout trip, got %q", mode, re.Limit)
		}
		var ee *xcql.EvalError
		if !errors.As(err, &ee) {
			t.Fatalf("%v: want *EvalError, got %T", mode, err)
		}
		if !strings.Contains(ee.Query, "stream(") {
			t.Fatalf("%v: EvalError should carry the query text, got %q", mode, ee.Query)
		}

		after, err := e.Eval(probe, at)
		if err != nil {
			t.Fatalf("%v: engine unusable after kill: %v", mode, err)
		}
		if xcql.StringValue(after[0]) != xcql.StringValue(before[0]) {
			t.Fatalf("%v: probe diverged after kill: %v vs %v", mode, after[0], before[0])
		}
	}
}

// Engine.EvalContext is the one-shot governed entry point.
func TestEngineEvalContext(t *testing.T) {
	e := newEngine(t)
	seq, err := e.EvalContext(context.Background(), `stream("credit")//account/customer`, at,
		xcql.Limits{Timeout: time.Second, MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if got := xcql.FormatSequence(seq); !strings.Contains(got, "John Smith") {
		t.Fatalf("result = %q", got)
	}

	_, err = e.EvalContext(context.Background(),
		`for $a in stream("credit")//* for $b in stream("credit")//* return $b`,
		at, xcql.Limits{MaxSteps: 10})
	re, ok := xcql.ResourceCause(err)
	if !ok || re.Limit != xcql.LimitSteps {
		t.Fatalf("want steps trip, got %v", err)
	}
}
