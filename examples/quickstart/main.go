// Quickstart: build a temporal XML stream from a document, run XCQL
// queries over its history, and watch the four execution plans agree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"xcql"
)

const structureXML = `<stream:structure>
<tag type="snapshot" id="1" name="creditAccounts">
  <tag type="temporal" id="2" name="account">
    <tag type="snapshot" id="3" name="customer"/>
    <tag type="temporal" id="4" name="creditLimit"/>
    <tag type="event" id="5" name="transaction">
      <tag type="snapshot" id="6" name="vendor"/>
      <tag type="temporal" id="7" name="status"/>
      <tag type="snapshot" id="8" name="amount"/>
    </tag>
  </tag>
</tag>
</stream:structure>`

// The running example of the paper (§3.1): an account whose credit limit
// was raised in 2001 and a charge whose status later flipped.
const documentXML = `<creditAccounts>
  <account id="1234" vtFrom="1998-10-10T12:20:22" vtTo="now">
    <customer>John Smith</customer>
    <creditLimit vtFrom="1998-10-10T12:20:22" vtTo="2001-04-23T23:11:08">2000</creditLimit>
    <creditLimit vtFrom="2001-04-23T23:11:08" vtTo="now">5000</creditLimit>
    <transaction id="12345" vtFrom="2003-10-23T12:23:34" vtTo="2003-10-23T12:23:34">
      <vendor>Southlake Pizza</vendor>
      <amount>38.20</amount>
      <status vtFrom="2003-10-23T12:24:35" vtTo="now">charged</status>
    </transaction>
  </account>
</creditAccounts>`

func main() {
	engine := xcql.NewEngine()
	structure, err := xcql.ParseTagStructure(structureXML)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := xcql.ParseDocument(documentXML)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := engine.AddDocumentStream("credit", structure, doc); err != nil {
		log.Fatal(err)
	}

	at := time.Date(2003, time.November, 15, 12, 0, 0, 0, time.UTC)

	// 1. A current-state query: the credit limit valid right now.
	currentLimit := `stream("credit")//account/creditLimit?[now]`
	// 2. A historical query: every limit the account ever had.
	allLimits := `stream("credit")//account/creditLimit`
	// 3. A temporal aggregate: total charged in October 2003.
	octoberTotal := `sum(stream("credit")//transaction?[2003-10-01,2003-11-01]
	                     [status = "charged"]/amount)`

	for _, q := range []struct{ label, src string }{
		{"current credit limit", currentLimit},
		{"all limit versions", allLimits},
		{"October charges", octoberTotal},
	} {
		fmt.Printf("== %s\n", q.label)
		for _, mode := range []xcql.Mode{xcql.CaQ, xcql.QaC, xcql.QaCPlus, xcql.QaCPlusPlus} {
			compiled, err := engine.Compile(q.src, mode)
			if err != nil {
				log.Fatal(err)
			}
			res, err := compiled.Eval(at)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-4s -> %s\n", mode, xcql.FormatSequence(res))
		}
	}

	// The materialized temporal view, for comparison (normally this is
	// never built — the whole point of QaC/QaC+).
	view, err := engine.MaterializeView("credit", at)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== materialized temporal view")
	fmt.Println(view.IndentString())
}
