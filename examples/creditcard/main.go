// The paper's running example (§3.1) end to end: a credit-card processor
// broadcasts account updates and charge events as fragments; a client
// runs the paper's Query 1 (maxed-out accounts) and Query 2 (fraud
// detection) continuously as the stream arrives.
//
//	go run ./examples/creditcard
package main

import (
	"fmt"
	"log"
	"time"

	"xcql"
)

const structureXML = `<stream:structure>
<tag type="snapshot" id="1" name="creditAccounts">
  <tag type="temporal" id="2" name="account">
    <tag type="snapshot" id="3" name="customer"/>
    <tag type="temporal" id="4" name="creditLimit"/>
    <tag type="event" id="5" name="transaction">
      <tag type="snapshot" id="6" name="vendor"/>
      <tag type="temporal" id="7" name="status"/>
      <tag type="snapshot" id="8" name="amount"/>
    </tag>
  </tag>
</tag>
</stream:structure>`

// Query 1 (§3.1): accounts maxed out in the billing period of November
// 2003 — the cumulative charged amount meets the current credit limit.
const query1 = `
for $a in stream("credit")//account
where sum($a/transaction?[2003-11-01,2003-12-01]
          [status = "charged"]/amount) >=
      $a/creditLimit?[now]
return
  <account>
    { attribute id {$a/@id},
      $a/customer,
      $a/creditLimit?[now] }
  </account>`

// Query 2 (§3.1): potential fraud — charges within the last hour total
// more than max(90% of the current limit, 5000).
const query2 = `
for $a in stream("credit")//account
where sum($a/transaction?[now-PT1H,now]
          [status = "charged"]/amount) >=
      max(($a/creditLimit?[now] * 0.9, 5000))
return
  <alert>
    <account id={$a/@id}>
      {$a/customer}
    </account>
  </alert>`

func main() {
	structure := xcql.MustParseTagStructure(structureXML)
	server := xcql.NewServer("credit", structure)
	defer server.Close()
	client := xcql.NewClient("credit", structure)
	defer client.Close()

	engine := xcql.NewEngine()
	engine.AttachClient(client)

	// the simulated feed's clock; continuous queries evaluate against it
	clock := time.Date(2003, time.November, 2, 9, 0, 0, 0, time.UTC)
	now := func() time.Time { return clock }

	makeCQ := func(label, src string) *xcql.ContinuousQuery {
		q, err := engine.Compile(src, xcql.QaCPlus)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		cq := xcql.NewContinuousQuery(q, func(r xcql.Result) {
			if len(r.Delta) > 0 {
				fmt.Printf("[%s] %s:\n%s\n", r.At.Format("2006-01-02 15:04"), label,
					xcql.FormatSequence(r.Delta))
			}
		})
		cq.Clock = now
		cq.Attach(client)
		return cq
	}
	makeCQ("Query 1: maxed-out account", query1)
	makeCQ("Query 2: fraud alert", query2)

	// subscribe the client and pump the broker synchronously for the demo
	sub := server.Subscribe(1024, true)
	done := make(chan struct{})
	go func() { client.Consume(sub); close(done) }()

	ts := func(s string) time.Time {
		t, err := time.Parse("2006-01-02T15:04:05", s)
		if err != nil {
			log.Fatal(err)
		}
		return t.UTC()
	}
	el := func(src string) *xcql.Node { return xcql.MustParseDocument(src).Root() }

	// Initial document: two accounts, one small limit.
	fmt.Println("--- initial document arrives as fragments")
	server.Publish(xcql.NewFragment(0, 1, ts("2003-01-01T00:00:00"),
		el(`<creditAccounts><hole id="1" tsid="2"/><hole id="2" tsid="2"/></creditAccounts>`)))
	server.Publish(xcql.NewFragment(1, 2, ts("2003-01-01T00:00:00"),
		el(`<account id="1234"><customer>John Smith</customer><hole id="10" tsid="4"/></account>`)))
	server.Publish(xcql.NewFragment(10, 4, ts("2003-01-01T00:00:00"), el(`<creditLimit>5000</creditLimit>`)))
	server.Publish(xcql.NewFragment(2, 2, ts("2003-01-01T00:00:00"),
		el(`<account id="5678"><customer>Jane Doe</customer><hole id="20" tsid="4"/></account>`)))
	server.Publish(xcql.NewFragment(20, 4, ts("2003-01-01T00:00:00"), el(`<creditLimit>1000</creditLimit>`)))

	// A burst of charges against Jane's card within one hour — the unit
	// of update is a fragment: the account is re-sent with new holes, the
	// transactions follow as event fillers, their statuses as temporal
	// fillers.
	fmt.Println("--- 08:30-09:00: rapid charges on account 5678")
	server.Publish(xcql.NewFragment(2, 2, ts("2003-11-02T08:30:00"),
		el(`<account id="5678"><customer>Jane Doe</customer><hole id="20" tsid="4"/><hole id="30" tsid="5"/><hole id="31" tsid="5"/></account>`)))
	server.Publish(xcql.NewFragment(30, 5, ts("2003-11-02T08:31:00"),
		el(`<transaction id="t1"><vendor>Electronics Mart</vendor><amount>4200</amount><hole id="40" tsid="7"/></transaction>`)))
	server.Publish(xcql.NewFragment(40, 7, ts("2003-11-02T08:31:05"), el(`<status>charged</status>`)))
	server.Publish(xcql.NewFragment(31, 5, ts("2003-11-02T08:45:00"),
		el(`<transaction id="t2"><vendor>Jeweller</vendor><amount>900</amount><hole id="41" tsid="7"/></transaction>`)))
	server.Publish(xcql.NewFragment(41, 7, ts("2003-11-02T08:45:10"), el(`<status>charged</status>`)))

	server.Close()
	<-done

	// Jane disputes the jeweller charge three days later: the status
	// filler is re-sent with a new validTime — the charge disappears from
	// [status = "charged"] windows evaluated ?[now] onwards.
	fmt.Println("--- Nov 5: the jeweller charge is suspended after a dispute")
	client.Apply(xcql.NewFragment(41, 7, ts("2003-11-05T10:00:00"), el(`<status>suspended</status>`)))

	clock = time.Date(2003, time.November, 6, 0, 0, 0, 0, time.UTC)
	sum, err := engine.Eval(
		`sum(stream("credit")//account[@id = "5678"]/transaction[status?[now] = "charged"]/amount)`, clock)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("currently-charged total on 5678 after the dispute: %s\n", xcql.FormatSequence(sum))

	// And the full history remains queryable — the temporal view.
	view, err := engine.MaterializeView("credit", clock)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- materialized temporal view")
	fmt.Println(view.IndentString())
}
