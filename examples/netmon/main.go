// Network monitoring (§2, example 1): two streams from a backbone router
// — SYN packets and ACK packets — and a continuous query that flags
// connections not acknowledged within a minute.
//
//	go run ./examples/netmon
package main

import (
	"fmt"
	"log"
	"time"

	"xcql"
)

const synStructure = `<stream:structure>
<tag type="snapshot" id="1" name="gsyn">
  <tag type="event" id="2" name="packet">
    <tag type="snapshot" id="3" name="id"/>
    <tag type="snapshot" id="4" name="srcIP"/>
    <tag type="snapshot" id="5" name="srcPort"/>
  </tag>
</tag>
</stream:structure>`

const ackStructure = `<stream:structure>
<tag type="snapshot" id="1" name="ack">
  <tag type="event" id="2" name="packet">
    <tag type="snapshot" id="3" name="id"/>
    <tag type="snapshot" id="4" name="destIP"/>
    <tag type="snapshot" id="5" name="destPort"/>
  </tag>
</tag>
</stream:structure>`

// The paper's query, verbatim save for the stream plumbing: a SYN is
// misbehaving when no ACK with matching id/address arrives in the window
// [vtFrom($s)+PT1M, now] — i.e. it was never acknowledged and a minute
// has passed.
const query = `
for $s in stream("gsyn")//packet
where not (some $a in stream("ack")//packet
                      ?[vtFrom($s),vtFrom($s)+PT1M]
           satisfies $s/id = $a/id
           and $s/srcIP = $a/destIP
           and $s/srcPort = $a/destPort)
  and vtFrom($s)+PT1M < now
return <warning> { $s/id/text() } </warning>`

func main() {
	engine := xcql.NewEngine()
	syn := engine.AddEmptyStream("gsyn", xcql.MustParseTagStructure(synStructure))
	ack := engine.AddEmptyStream("ack", xcql.MustParseTagStructure(ackStructure))

	ts := func(s string) time.Time {
		t, err := time.Parse("2006-01-02T15:04:05", s)
		if err != nil {
			log.Fatal(err)
		}
		return t.UTC()
	}
	el := func(src string) *xcql.Node { return xcql.MustParseDocument(src).Root() }
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	must(syn.Add(xcql.NewFragment(0, 1, ts("2003-06-01T00:00:00"),
		el(`<gsyn><hole id="1" tsid="2"/><hole id="2" tsid="2"/><hole id="3" tsid="2"/></gsyn>`))))
	must(ack.Add(xcql.NewFragment(0, 1, ts("2003-06-01T00:00:00"),
		el(`<ack><hole id="101" tsid="2"/></ack>`))))

	// three SYNs
	must(syn.Add(xcql.NewFragment(1, 2, ts("2003-06-01T10:00:00"),
		el(`<packet><id>c1</id><srcIP>10.0.0.1</srcIP><srcPort>4000</srcPort></packet>`))))
	must(syn.Add(xcql.NewFragment(2, 2, ts("2003-06-01T10:00:10"),
		el(`<packet><id>c2</id><srcIP>10.0.0.2</srcIP><srcPort>4001</srcPort></packet>`))))
	must(syn.Add(xcql.NewFragment(3, 2, ts("2003-06-01T10:00:20"),
		el(`<packet><id>c3</id><srcIP>10.0.0.3</srcIP><srcPort>4002</srcPort></packet>`))))
	// only c1 is acknowledged in time
	must(ack.Add(xcql.NewFragment(101, 2, ts("2003-06-01T10:00:30"),
		el(`<packet><id>c1</id><destIP>10.0.0.1</destIP><destPort>4000</destPort></packet>`))))

	q, err := engine.Compile(query, xcql.QaCPlus)
	if err != nil {
		log.Fatal(err)
	}

	// at 10:00:50 nothing has timed out yet
	for _, atStr := range []string{"2003-06-01T10:00:50", "2003-06-01T10:02:00"} {
		res, err := q.Eval(ts(atStr))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("at %s — %d unacknowledged connection(s)\n", atStr, len(res))
		if len(res) > 0 {
			fmt.Println(xcql.FormatSequence(res))
		}
	}
}
