// Coincidence queries across multiple streams (§2, example 3): vehicle
// sensors, road sensors and traffic lights each broadcast their own
// stream; a monitoring client joins them on time to switch a light green
// when an ambulance approaches.
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"xcql"
)

// Each stream has events under a static root. Locations are "x,y" pairs;
// the distance() helper is registered as a user function, as the paper
// assumes.
const vehicleStructure = `<stream:structure>
<tag type="snapshot" id="1" name="vehicles">
  <tag type="event" id="2" name="event">
    <tag type="snapshot" id="3" name="vehicleID"/>
    <tag type="snapshot" id="4" name="type"/>
    <tag type="snapshot" id="5" name="location"/>
  </tag>
</tag>
</stream:structure>`

const roadStructure = `<stream:structure>
<tag type="snapshot" id="1" name="road_sensors">
  <tag type="event" id="2" name="event">
    <tag type="snapshot" id="3" name="sensorID"/>
    <tag type="snapshot" id="4" name="location"/>
    <tag type="snapshot" id="5" name="speed"/>
  </tag>
</tag>
</stream:structure>`

const lightStructure = `<stream:structure>
<tag type="snapshot" id="1" name="traffic_lights">
  <tag type="event" id="2" name="event">
    <tag type="snapshot" id="3" name="id"/>
    <tag type="snapshot" id="4" name="location"/>
    <tag type="snapshot" id="5" name="status"/>
  </tag>
</tag>
</stream:structure>`

// The paper's query: when an ambulance is within 0.1 of a road sensor and
// 10 of a traffic light, schedule the light to switch, the delay derived
// from distance and measured road speed. The road-sensor and light events
// are windowed to the ambulance event's own lifespan — a coincidence join.
const query = `
for $v in stream("vehicle")//event
    $r in stream("road_sensor")//event?[vtFrom($v)-PT30S,vtTo($v)+PT30S]
    $t in stream("traffic_light")//event?[vtFrom($v)-PT30S,vtTo($v)+PT30S]
where distance($v/location, $r/location) < 0.1
  and distance($v/location, $t/location) < 10
  and $v/type = "ambulance"
return
  <set_traffic_light ID="{$t/id}">
    <status>green</status>
    <time>{ vtFrom($t) + (distance($v/location, $t/location) div $r/speed) }</time>
  </set_traffic_light>`

func main() {
	engine := xcql.NewEngine()
	vehicles := engine.AddEmptyStream("vehicle", xcql.MustParseTagStructure(vehicleStructure))
	roads := engine.AddEmptyStream("road_sensor", xcql.MustParseTagStructure(roadStructure))
	lights := engine.AddEmptyStream("traffic_light", xcql.MustParseTagStructure(lightStructure))

	engine.RegisterFunc("distance", func(_ *xcql.EvalContext, args []xcql.Sequence) (xcql.Sequence, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("distance wants 2 arguments")
		}
		x1, y1, err := parseLoc(xcql.StringValue(args[0][0]))
		if err != nil {
			return nil, err
		}
		x2, y2, err := parseLoc(xcql.StringValue(args[1][0]))
		if err != nil {
			return nil, err
		}
		return xcql.Sequence{math.Hypot(x1-x2, y1-y2)}, nil
	})

	ts := func(s string) time.Time {
		t, err := time.Parse("2006-01-02T15:04:05", s)
		if err != nil {
			log.Fatal(err)
		}
		return t.UTC()
	}
	el := func(src string) *xcql.Node { return xcql.MustParseDocument(src).Root() }

	// roots
	must(vehicles.Add(xcql.NewFragment(0, 1, ts("2003-06-01T00:00:00"),
		el(`<vehicles><hole id="1" tsid="2"/><hole id="2" tsid="2"/></vehicles>`))))
	must(roads.Add(xcql.NewFragment(0, 1, ts("2003-06-01T00:00:00"),
		el(`<road_sensors><hole id="101" tsid="2"/><hole id="102" tsid="2"/></road_sensors>`))))
	must(lights.Add(xcql.NewFragment(0, 1, ts("2003-06-01T00:00:00"),
		el(`<traffic_lights><hole id="201" tsid="2"/></traffic_lights>`))))

	// 08:00:00 — an ambulance passes sensor S7 near light L1
	must(vehicles.Add(xcql.NewFragment(1, 2, ts("2003-06-01T08:00:00"),
		el(`<event><vehicleID>AMB-42</vehicleID><type>ambulance</type><location>5.02,3.00</location></event>`))))
	// a delivery van at the same place slightly later (must not trigger)
	must(vehicles.Add(xcql.NewFragment(2, 2, ts("2003-06-01T08:03:00"),
		el(`<event><vehicleID>VAN-9</vehicleID><type>van</type><location>5.02,3.00</location></event>`))))
	// road sensor readings
	must(roads.Add(xcql.NewFragment(101, 2, ts("2003-06-01T08:00:05"),
		el(`<event><sensorID>S7</sensorID><location>5.00,3.00</location><speed>0.9</speed></event>`))))
	must(roads.Add(xcql.NewFragment(102, 2, ts("2003-06-01T07:00:00"),
		el(`<event><sensorID>S7</sensorID><location>5.00,3.00</location><speed>0.5</speed></event>`)))) // stale: outside window
	// the light reported its status just before
	must(lights.Add(xcql.NewFragment(201, 2, ts("2003-06-01T08:00:10"),
		el(`<event><id>L1</id><location>9.00,3.00</location><status>red</status></event>`))))

	at := ts("2003-06-01T08:05:00")
	q, err := engine.Compile(query, xcql.QaCPlus)
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Eval(at)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("traffic-light commands issued:")
	fmt.Println(xcql.FormatSequence(res))
	if len(res) != 1 {
		log.Fatalf("expected exactly one command, got %d", len(res))
	}
}

func parseLoc(s string) (x, y float64, err error) {
	_, err = fmt.Sscanf(s, "%f,%f", &x, &y)
	return x, y, err
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
