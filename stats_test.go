package xcql_test

import (
	"context"
	"testing"

	"xcql"
	"xcql/internal/evalbench"
)

// statsFor evaluates src under mode on the dataset and returns the
// recorded cost counters.
func statsFor(t *testing.T, ds *evalbench.Dataset, src string, mode xcql.Mode) xcql.EvalStats {
	t.Helper()
	q, err := ds.Runtime.Compile(src, mode)
	if err != nil {
		t.Fatalf("%s: compile: %v", mode, err)
	}
	if _, err := q.Eval(evalbench.EvalInstant); err != nil {
		t.Fatalf("%s: eval: %v", mode, err)
	}
	return q.LastStats()
}

// Every plan must populate its stats on the Figure-4 workload: the
// counters are the paper's cost quantities made observable, so an empty
// profile means the instrumentation fell off an access path. QaC++ is
// the deliberate exception on the scan/resolve counters: its contract is
// that every access is a label-index fetch, so FillersScanned and
// HolesResolved must be exactly zero and LabelRangeLookups nonzero.
func TestEvalStatsPopulated(t *testing.T) {
	ds, err := evalbench.Build(0.005, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, qc := range evalbench.Queries() {
		for _, mode := range evalbench.Modes {
			s := statsFor(t, ds, qc.Src, mode)
			if s.Plan != mode.String() {
				t.Errorf("%s/%s: Plan = %q", qc.Name, mode, s.Plan)
			}
			if mode == xcql.QaCPlusPlus {
				if s.FillersScanned != 0 {
					t.Errorf("%s/%s: FillersScanned = %d, want 0", qc.Name, mode, s.FillersScanned)
				}
				if s.HolesResolved != 0 {
					t.Errorf("%s/%s: HolesResolved = %d, want 0", qc.Name, mode, s.HolesResolved)
				}
				if s.LabelRangeLookups == 0 {
					t.Errorf("%s/%s: LabelRangeLookups = 0", qc.Name, mode)
				}
			} else {
				if s.FillersScanned == 0 {
					t.Errorf("%s/%s: FillersScanned = 0", qc.Name, mode)
				}
				if s.HolesResolved == 0 {
					t.Errorf("%s/%s: HolesResolved = 0", qc.Name, mode)
				}
				if s.LabelRangeLookups != 0 {
					t.Errorf("%s/%s: LabelRangeLookups = %d, want 0", qc.Name, mode, s.LabelRangeLookups)
				}
			}
			if s.Steps == 0 {
				t.Errorf("%s/%s: Steps = 0", qc.Name, mode)
			}
			if s.BytesMaterialized == 0 {
				t.Errorf("%s/%s: BytesMaterialized = 0", qc.Name, mode)
			}
			if s.TotalTime <= 0 {
				t.Errorf("%s/%s: TotalTime = %v", qc.Name, mode, s.TotalTime)
			}
			if s.ExecTime <= 0 {
				t.Errorf("%s/%s: ExecTime = %v", qc.Name, mode, s.ExecTime)
			}
		}
	}
}

// The paper's Figure-4 ordering, encoded on the counters instead of wall
// time: under the scan cost model every store pass examines the whole
// fragment log, so FillersScanned orders the plans by access cost —
// QaC++ never scans at all (the label index answers everything), QaC+
// batches all hole ids of a step into one pass, QaC pays one pass per
// hole, and CaQ pays one pass for every hole in the document.
func TestFillersScannedMonotonic(t *testing.T) {
	// the cost-model claim is about scan passes: use the scan store
	scan, err := evalbench.Build(0.005, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, qc := range evalbench.Queries() {
		plusplus := statsFor(t, scan, qc.Src, xcql.QaCPlusPlus)
		plus := statsFor(t, scan, qc.Src, xcql.QaCPlus)
		qac := statsFor(t, scan, qc.Src, xcql.QaC)
		caq := statsFor(t, scan, qc.Src, xcql.CaQ)
		if !(plusplus.FillersScanned <= plus.FillersScanned) {
			t.Errorf("%s: FillersScanned QaC++ (%d) !<= QaC+ (%d)",
				qc.Name, plusplus.FillersScanned, plus.FillersScanned)
		}
		if plusplus.FillersScanned != 0 {
			t.Errorf("%s: FillersScanned QaC++ (%d), want 0", qc.Name, plusplus.FillersScanned)
		}
		if plusplus.HolesResolved != 0 {
			t.Errorf("%s: HolesResolved QaC++ (%d), want 0", qc.Name, plusplus.HolesResolved)
		}
		if !(plus.FillersScanned < qac.FillersScanned) {
			t.Errorf("%s: FillersScanned QaC+ (%d) !< QaC (%d)",
				qc.Name, plus.FillersScanned, qac.FillersScanned)
		}
		if !(qac.FillersScanned < caq.FillersScanned) {
			t.Errorf("%s: FillersScanned QaC (%d) !< CaQ (%d)",
				qc.Name, qac.FillersScanned, caq.FillersScanned)
		}
		if plus.HolesResolved > qac.HolesResolved {
			t.Errorf("%s: HolesResolved QaC+ (%d) > QaC (%d)",
				qc.Name, plus.HolesResolved, qac.HolesResolved)
		}
		if !(qac.HolesResolved < caq.HolesResolved) {
			t.Errorf("%s: HolesResolved QaC (%d) !< CaQ (%d)",
				qc.Name, qac.HolesResolved, caq.HolesResolved)
		}
		// only CaQ builds the whole view, so it must construct the most nodes
		if !(qac.NodesConstructed < caq.NodesConstructed) {
			t.Errorf("%s: NodesConstructed QaC (%d) !< CaQ (%d)",
				qc.Name, qac.NodesConstructed, caq.NodesConstructed)
		}
	}
}

// The tsid index is QaC+'s private shortcut: a descendant step from the
// stream top compiles to a direct tsid fetch under QaC+ and to path
// navigation under QaC/CaQ, so index hits must be nonzero exactly for
// QaC+. (Q1/Q2/Q5 are child-path queries and never touch the index; the
// descendant query is what exercises it.)
func TestTSIDIndexHitsOnlyUnderQaCPlus(t *testing.T) {
	ds, err := evalbench.Build(0.005, true)
	if err != nil {
		t.Fatal(err)
	}
	const src = `for $c in stream("auction")//closed_auction return $c/price`
	plus := statsFor(t, ds, src, xcql.QaCPlus)
	if plus.TSIDIndexHits == 0 {
		t.Errorf("QaC+: TSIDIndexHits = 0 on a //-query, want > 0 (lookups=%d misses=%d)",
			plus.TSIDLookups, plus.TSIDIndexMisses)
	}
	for _, mode := range []xcql.Mode{xcql.QaC, xcql.CaQ} {
		s := statsFor(t, ds, src, mode)
		if s.TSIDLookups != 0 || s.TSIDIndexHits != 0 {
			t.Errorf("%s: tsid lookups = %d hits = %d, want 0/0", mode, s.TSIDLookups, s.TSIDIndexHits)
		}
	}
	// QaC++ takes the same shortcut through its own index: label-range
	// hits instead of tsid-index hits, and zero of everything else
	pp := statsFor(t, ds, src, xcql.QaCPlusPlus)
	if pp.LabelRangeHits == 0 {
		t.Errorf("QaC++: LabelRangeHits = 0 on a //-query, want > 0 (lookups=%d misses=%d)",
			pp.LabelRangeLookups, pp.LabelRangeMisses)
	}
	if pp.TSIDLookups != 0 || pp.TSIDIndexHits != 0 {
		t.Errorf("QaC++: tsid lookups = %d hits = %d, want 0/0 (the label index answers)",
			pp.TSIDLookups, pp.TSIDIndexHits)
	}
	if pp.FillersScanned != 0 || pp.HolesResolved != 0 {
		t.Errorf("QaC++: FillersScanned = %d HolesResolved = %d, want 0/0",
			pp.FillersScanned, pp.HolesResolved)
	}
}

// A failed evaluation still records how far it got: the profile of a
// budget trip is exactly what an operator needs to size the limit.
func TestLastStatsRecordedOnBudgetTrip(t *testing.T) {
	ds, err := evalbench.Build(0.005, false)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ds.Runtime.Compile(evalbench.Queries()[0].Src, xcql.QaC)
	if err != nil {
		t.Fatal(err)
	}
	_, err = q.EvalLimits(context.Background(), evalbench.EvalInstant, xcql.Limits{MaxSteps: 10})
	if err == nil {
		t.Fatal("MaxSteps=10 did not trip")
	}
	s := q.LastStats()
	if s.Steps == 0 {
		t.Errorf("Steps = 0 after a tripped evaluation, want the partial count")
	}
	if s.Plan != "QaC" {
		t.Errorf("Plan = %q, want QaC", s.Plan)
	}
}

// Engine.EvalContextStats returns the profile alongside the result.
func TestEngineEvalContextStats(t *testing.T) {
	engine := xcql.NewEngine()
	structure := xcql.MustParseTagStructure(structureXML)
	if _, err := engine.AddDocumentStream("credit", structure, xcql.MustParseDocument(docXML)); err != nil {
		t.Fatal(err)
	}
	at, _ := xcql.ParseDateTime("2003-12-01T00:00:00")
	seq, stats, err := engine.EvalContextStats(context.Background(),
		`for $a in stream("credit")/creditAccounts/account return $a/customer`,
		at.Time(), xcql.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("no results")
	}
	if stats.Plan != "QaC+" || stats.FillersScanned == 0 || stats.TotalTime <= 0 {
		t.Errorf("stats not populated: %s", stats.String())
	}
}

// The trace sink must see one span per phase for a traced evaluation,
// and compile-phase times must be copied into the evaluation's stats.
func TestTraceSpans(t *testing.T) {
	ds, err := evalbench.Build(0, false)
	if err != nil {
		t.Fatal(err)
	}
	sink := &xcql.CollectorSink{}
	ds.Runtime.SetTraceSink(sink)
	defer ds.Runtime.SetTraceSink(nil)
	q, err := ds.Runtime.Compile(evalbench.Queries()[0].Src, xcql.QaCPlus)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Eval(evalbench.EvalInstant); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, sp := range sink.Spans() {
		names[sp.Name]++
	}
	for _, want := range []string{"parse", "translate", "execute", "materialize", "eval"} {
		if names[want] == 0 {
			t.Errorf("no %q span; got %v", want, names)
		}
	}
	s := q.LastStats()
	if s.ParseTime <= 0 || s.TranslateTime <= 0 {
		t.Errorf("compile times not copied into stats: parse=%v translate=%v", s.ParseTime, s.TranslateTime)
	}
}
