package xcql_test

// Benchmarks regenerating the paper's evaluation (§7) and the ablations
// called out in DESIGN.md.
//
//	BenchmarkFigure4/…        one sub-benchmark per cell of Figure 4
//	                          (query × size × method)
//	BenchmarkPlanGrid/…       all four plans (CaQ/QaC/QaC+/QaC++) over the
//	                          Figure-4 queries plus a descendant-step row
//	BenchmarkFigure4Indexed/… the indexing ablation (production store)
//	BenchmarkSelectivity/…    Q5's price threshold swept
//	BenchmarkGranularity/…    fragmentation granularity: fine vs coarse
//	BenchmarkGetFillers/…     hole resolution: indexed vs scan cost model
//	BenchmarkReconstruction/… recursive temporalize vs schema-driven (§5.1)
//	BenchmarkContinuous/…     per-arrival re-evaluation latency
//
// Under -short the grid shrinks to the quick scales; the full run uses
// the paper's sizes (~27 KB / 5.8 MB / 11.8 MB).

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"xcql/internal/evalbench"
	"xcql/internal/fragment"
	"xcql/internal/obs"
	"xcql/internal/stream"
	"xcql/internal/tagstruct"
	"xcql/internal/temporal"
	ixcql "xcql/internal/xcql"
	"xcql/internal/xmark"
	"xcql/internal/xmldom"
)

func benchScales(b *testing.B) []float64 {
	if testing.Short() {
		return evalbench.QuickScales
	}
	return evalbench.Scales
}

var datasetCache = map[string]*evalbench.Dataset{}

func dataset(b *testing.B, scale float64, scan bool) *evalbench.Dataset {
	b.Helper()
	key := fmt.Sprintf("%v/%v", scale, scan)
	if ds, ok := datasetCache[key]; ok {
		return ds
	}
	ds, err := evalbench.Build(scale, scan)
	if err != nil {
		b.Fatal(err)
	}
	datasetCache[key] = ds
	return ds
}

// BenchmarkFigure4 is the paper's Figure 4: run time of Q1/Q2/Q5 over
// fragmented XMark streams under QaC++, QaC+, QaC and CaQ, with the
// published linear-scan get_fillers cost model.
func BenchmarkFigure4(b *testing.B) {
	for _, scale := range benchScales(b) {
		for _, query := range evalbench.Queries() {
			for _, mode := range evalbench.Modes {
				name := fmt.Sprintf("%s/sf=%g/%s", query.Name, scale, mode)
				b.Run(name, func(b *testing.B) {
					ds := dataset(b, scale, true)
					q, err := ds.Runtime.Compile(query.Src, mode)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(ds.FileSize), "doc-bytes")
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := q.Eval(evalbench.EvalInstant); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					reportCostMetrics(b, q)
				})
			}
		}
	}
}

// reportCostMetrics attaches the last evaluation's cost counters to the
// benchmark output, so BENCH_*.json tracks the paper's cost quantities
// (fillers scanned, holes resolved, tsid hits, bytes materialized) next
// to wall time across PRs.
func reportCostMetrics(b *testing.B, q *ixcql.Query) {
	b.Helper()
	s := q.LastStats()
	b.ReportMetric(float64(s.FillersScanned), "fillers/op")
	b.ReportMetric(float64(s.HolesResolved), "holes/op")
	b.ReportMetric(float64(s.TSIDIndexHits), "tsid-hits/op")
	b.ReportMetric(float64(s.BytesMaterialized), "mat-bytes/op")
}

// BenchmarkPlanGrid is the four-plan grid behind the QaC++ acceptance
// claim: every Figure-4 query plus a descendant-step row (QD, the shape
// the label index serves directly) under all four plans on the scan
// store. The QaC++ cells must beat QaC+ wall-clock at least on the
// descendant rows — under the scan cost model QaC+ still pays log scans
// per index fetch, while QaC++ answers everything from the label index.
// One untimed warmup evaluation builds the label index outside the
// timer, matching how the other plans get their stores pre-ingested.
func BenchmarkPlanGrid(b *testing.B) {
	scale := 0.02
	if testing.Short() {
		scale = 0.01
	}
	queries := append(evalbench.Queries(), struct{ Name, Src string }{
		"QD", `for $c in stream("auction")//closed_auction return $c/price`,
	})
	for _, query := range queries {
		for _, mode := range evalbench.Modes {
			b.Run(fmt.Sprintf("%s/%s", query.Name, mode), func(b *testing.B) {
				ds := dataset(b, scale, true)
				q, err := ds.Runtime.Compile(query.Src, mode)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := q.Eval(evalbench.EvalInstant); err != nil {
					b.Fatal(err) // warmup: label index built outside the timer
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := q.Eval(evalbench.EvalInstant); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reportCostMetrics(b, q)
				s := q.LastStats()
				b.ReportMetric(float64(s.LabelRangeLookups), "label-lookups/op")
			})
		}
	}
}

// BenchmarkFigure4Indexed is the indexing ablation: the same cells over
// the production indexed store. The CaQ ≫ QaC ≫ QaC+ separation collapses
// to the work each plan actually touches, showing how much of the
// published gap is the get_fillers scan itself.
func BenchmarkFigure4Indexed(b *testing.B) {
	scale := 0.05
	if testing.Short() {
		scale = 0.01
	}
	for _, query := range evalbench.Queries() {
		for _, mode := range evalbench.Modes {
			b.Run(fmt.Sprintf("%s/%s", query.Name, mode), func(b *testing.B) {
				ds := dataset(b, scale, false)
				q, err := ds.Runtime.Compile(query.Src, mode)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := q.Eval(evalbench.EvalInstant); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reportCostMetrics(b, q)
			})
		}
	}
}

// BenchmarkSelectivity sweeps Q5's price threshold under QaC and QaC+:
// access cost dominates QaC regardless of selectivity, while QaC+ scales
// with the touched fragments — §7's observation that the gap widens on
// selective queries.
func BenchmarkSelectivity(b *testing.B) {
	scale := 0.05
	if testing.Short() {
		scale = 0.01
	}
	for _, threshold := range []int{0, 40, 120, 190} {
		for _, mode := range []ixcql.Mode{ixcql.QaCPlus, ixcql.QaC} {
			b.Run(fmt.Sprintf("price>=%d/%s", threshold, mode), func(b *testing.B) {
				ds := dataset(b, scale, true)
				src := fmt.Sprintf(`count(for $i in stream("auction")/site/closed_auctions/closed_auction
				                      where $i/price >= %d return $i/price)`, threshold)
				q, err := ds.Runtime.Compile(src, mode)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := q.Eval(evalbench.EvalInstant); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reportCostMetrics(b, q)
			})
		}
	}
}

// BenchmarkTraceOverhead guards the "tracing off costs nothing" claim:
// the same evaluation with the sink disabled and enabled. The disabled
// run must match the untraced baseline (no extra allocations on the
// nil-sink path); the enabled run shows the price of collection.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "disabled"
		if traced {
			name = "enabled"
		}
		b.Run(name, func(b *testing.B) {
			ds, err := evalbench.Build(0, false)
			if err != nil {
				b.Fatal(err)
			}
			if traced {
				ds.Runtime.SetTraceSink(&collectNothingSink{})
			}
			q, err := ds.Runtime.Compile(xmark.QueryQ1(), ixcql.QaCPlus)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Eval(evalbench.EvalInstant); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// collectNothingSink is the cheapest possible sink, so the enabled cell
// measures the engine's emission cost rather than span storage.
type collectNothingSink struct{}

func (collectNothingSink) Span(string, string, time.Time, time.Duration) {}

// BenchmarkTracePropagation guards the wire-propagation path the same
// way BenchmarkTraceOverhead guards the evaluation sink: one fragment
// published through a broadcast server into a subscriber, with the
// flight recorder detached (the disabled cell must add zero allocations
// over the untraced baseline) and attached (the enabled cell prices
// span recording + trace stamping).
func BenchmarkTracePropagation(b *testing.B) {
	structure, err := tagstruct.ParseString(`<stream:structure>
<tag type="snapshot" id="1" name="sensors">
  <tag type="event" id="2" name="event">
    <tag type="snapshot" id="3" name="value"/>
  </tag>
</tag>
</stream:structure>`)
	if err != nil {
		b.Fatal(err)
	}
	el := xmldom.MustParseString(`<event><value>7</value></event>`).Root()
	for _, traced := range []bool{false, true} {
		name := "disabled"
		if traced {
			name = "enabled"
		}
		b.Run(name, func(b *testing.B) {
			s := stream.NewServer("sensors", structure)
			defer s.Close()
			if traced {
				// large sampling interval: measure recording, not ring churn
				s.SetFlightRecorder(obs.NewFlightRecorder(obs.FlightRecorderOptions{SampleEvery: 1 << 20}))
			}
			sub := s.Subscribe(4, false)
			defer sub.Cancel()
			frag := fragment.New(1, 2, time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC), el)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Publish(frag)
				<-sub.C()
			}
		})
	}
}

// BenchmarkGranularity compares fragmentation granularities of the same
// document — §4's "reasonable fragmentation" trade-off. Finer cuts cost
// wire bytes (reported as metrics) but keep updates small; query time for
// Q5 is nearly unaffected because closed auctions fragment in both.
func BenchmarkGranularity(b *testing.B) {
	doc := xmark.Generate(xmark.Config{Scale: 0.01, Seed: 1})
	for _, g := range []struct {
		name string
		s    *tagstruct.Structure
	}{
		{"fine", xmark.Structure()},
		{"coarse", xmark.CoarseStructure()},
	} {
		fr := fragment.NewFragmenter(g.s)
		frags, err := fr.Fragment(doc.Clone())
		if err != nil {
			b.Fatal(err)
		}
		st := fragment.NewStore(g.s)
		if err := st.AddAll(frags); err != nil {
			b.Fatal(err)
		}
		rt := ixcql.NewRuntime()
		rt.RegisterStream("auction", st)
		q, err := rt.Compile(xmark.QueryQ5(), ixcql.QaCPlus)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(g.name, func(b *testing.B) {
			b.ReportMetric(float64(len(frags)), "fragments")
			b.ReportMetric(float64(xmark.FragmentedSize(frags)), "wire-bytes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Eval(evalbench.EvalInstant); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGetFillers measures hole resolution itself: indexed store
// versus the paper's scan cost model, at two stream sizes.
func BenchmarkGetFillers(b *testing.B) {
	for _, scale := range []float64{0.005, 0.02} {
		for _, scan := range []bool{false, true} {
			label := "indexed"
			if scan {
				label = "scan"
			}
			b.Run(fmt.Sprintf("sf=%g/%s", scale, label), func(b *testing.B) {
				ds := dataset(b, scale, scan)
				ids := ds.Store.FillerIDs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					id := ids[i%len(ids)]
					_ = ds.Store.GetFillers(id, evalbench.EvalInstant)
				}
			})
		}
	}
}

// BenchmarkReconstruction compares §5's recursive temporalize with the
// §5.1 schema-driven (flattened) reconstruction.
func BenchmarkReconstruction(b *testing.B) {
	ds := dataset(b, 0.01, false)
	b.Run("recursive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := temporal.Temporalize(ds.Store, evalbench.EvalInstant); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("schema-driven", func(b *testing.B) {
		r := temporal.NewReconstructor(ds.Store.Structure())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Materialize(ds.Store, evalbench.EvalInstant); err != nil {
				b.Fatal(err)
			}
		}
	})
}

const benchCreditStructure = `<stream:structure>
<tag type="snapshot" id="1" name="creditAccounts">
  <tag type="temporal" id="2" name="account">
    <tag type="snapshot" id="3" name="customer"/>
    <tag type="temporal" id="4" name="creditLimit"/>
    <tag type="event" id="5" name="transaction">
      <tag type="snapshot" id="6" name="vendor"/>
      <tag type="temporal" id="7" name="status"/>
      <tag type="snapshot" id="8" name="amount"/>
    </tag>
  </tag>
</tag>
</stream:structure>`

// BenchmarkContinuous measures the per-arrival latency of re-evaluating
// the paper's fraud-style sliding-window query as charge events stream in.
func BenchmarkContinuous(b *testing.B) {
	for _, preload := range []int{100, 1000} {
		b.Run(fmt.Sprintf("events=%d", preload), func(b *testing.B) {
			structure, err := tagstruct.ParseString(benchCreditStructure)
			if err != nil {
				b.Fatal(err)
			}
			st := fragment.NewStore(structure)
			base := time.Date(2003, time.November, 1, 0, 0, 0, 0, time.UTC)
			el := func(src string) *xmldom.Node { return xmldom.MustParseString(src).Root() }
			holes := `<hole id="2" tsid="4"/>`
			for i := 0; i < preload; i++ {
				holes += fmt.Sprintf(`<hole id="%d" tsid="5"/>`, 100+i)
			}
			mustAdd(b, st, fragment.New(0, 1, base, el(`<creditAccounts><hole id="1" tsid="2"/></creditAccounts>`)))
			mustAdd(b, st, fragment.New(1, 2, base, el(`<account id="1234"><customer>J</customer>`+holes+`</account>`)))
			mustAdd(b, st, fragment.New(2, 4, base, el(`<creditLimit>5000</creditLimit>`)))
			for i := 0; i < preload; i++ {
				tx := fmt.Sprintf(`<transaction id="t%d"><vendor>V</vendor><amount>%d</amount></transaction>`, i, 10+i%90)
				mustAdd(b, st, fragment.New(100+i, 5, base.Add(time.Duration(i)*time.Second), el(tx)))
			}
			rt := ixcql.NewRuntime()
			rt.RegisterStream("credit", st)
			q, err := rt.Compile(`for $a in stream("credit")//account
				where sum($a/transaction?[now-PT1H,now]/amount) >= 5000
				return $a/@id`, ixcql.QaCPlus)
			if err != nil {
				b.Fatal(err)
			}
			at := base.Add(time.Duration(preload) * time.Second)
			hist := obs.NewHistogram()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				if _, err := q.Eval(at); err != nil {
					b.Fatal(err)
				}
				hist.Observe(time.Since(start))
			}
			b.StopTimer()
			// tail latency alongside the mean: benchjson picks these up as
			// ordinary metrics, so snapshots track p99 across PRs
			snap := hist.Snapshot()
			b.ReportMetric(float64(snap.Quantile(0.50)), "p50-ns")
			b.ReportMetric(float64(snap.Quantile(0.90)), "p90-ns")
			b.ReportMetric(float64(snap.Quantile(0.99)), "p99-ns")
		})
	}
}

// BenchmarkParallelCache measures the execution strategies the engine
// offers on top of a fixed plan: sequential vs parallel hole resolution
// and cold vs warm filler-resolution cache, on a scale-heavy scan-store
// QaC+ workload whose results carry nested holes (so materialization
// resolves many independent fillers, each a full log pass under the
// paper's cost model). Results are byte-identical across all cells —
// see TestDiffHarness — only the cost moves. Note: the par4 cells show
// a wall-clock win only when GOMAXPROCS >= 2; on a single-core host
// they measure pool overhead (par-tasks/op still proves the fan-out
// ran), while the warm-cache win is core-count independent.
func BenchmarkParallelCache(b *testing.B) {
	scale := 0.02
	if testing.Short() {
		scale = 0.005
	}
	ds := dataset(b, scale, true)
	src := `for $x in stream("auction")//open_auction return $x`
	cells := []struct {
		name  string
		par   int
		cache int
		warm  bool
	}{
		{"QaC+/seq", 1, 0, false},
		{"QaC+/par4", 4, 0, false},
		{"QaC+/seq-cold-cache", 1, 4096, false},
		{"QaC+/seq-warm-cache", 1, 4096, true},
		{"QaC+/par4-warm-cache", 4, 4096, true},
	}
	for _, cell := range cells {
		b.Run(cell.name, func(b *testing.B) {
			q, err := ds.Runtime.Compile(src, ixcql.QaCPlus)
			if err != nil {
				b.Fatal(err)
			}
			q.WithParallelism(cell.par)
			if cell.cache > 0 && cell.warm {
				q.WithCache(cell.cache)
				if _, err := q.Eval(evalbench.EvalInstant); err != nil {
					b.Fatal(err) // fill the cache outside the timer
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if cell.cache > 0 && !cell.warm {
					b.StopTimer()
					q.WithCache(cell.cache) // a fresh, empty cache every pass
					b.StartTimer()
				}
				if _, err := q.Eval(evalbench.EvalInstant); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportCostMetrics(b, q)
			s := q.LastStats()
			b.ReportMetric(float64(s.CacheHits), "cache-hits/op")
			b.ReportMetric(float64(s.CacheMisses), "cache-misses/op")
			b.ReportMetric(float64(s.ParallelTasks), "par-tasks/op")
		})
	}
}

// BenchmarkFragmenter measures document fragmentation throughput.
func BenchmarkFragmenter(b *testing.B) {
	doc := xmark.Generate(xmark.Config{Scale: 0.01, Seed: 1})
	size := len(doc.Root().String())
	s := xmark.Structure()
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr := fragment.NewFragmenter(s)
		if _, err := fr.Fragment(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseQuery measures XCQL parsing plus Figure-3 translation.
func BenchmarkParseQuery(b *testing.B) {
	ds := dataset(b, 0, false)
	src := xmark.QueryQ2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Runtime.Compile(src, ixcql.QaCPlus); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXMLParse measures the streaming XML parser on generated data.
func BenchmarkXMLParse(b *testing.B) {
	src := xmark.Generate(xmark.Config{Scale: 0.005, Seed: 1}).Root().String()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xmldom.ParseString(src); err != nil {
			b.Fatal(err)
		}
	}
}

func mustAdd(b *testing.B, st *fragment.Store, f *fragment.Fragment) {
	b.Helper()
	if err := st.Add(f); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIncrementalContinuous pits incremental continuous evaluation
// against full re-evaluation on the streaming credit workload at three
// store scales (1x/10x/100x). Each iteration ingests one new charge
// event and evaluates: full mode re-reads the whole store, so its
// per-fragment cost grows with the preload; the incremental engine
// touches only the arriving fragment's partial-match unit, so its cost
// stays flat. buffered-bytes-hwm is the engine's standing-buffer
// high-water mark; handlers/op counts the units the last arrival
// recomputed.
func BenchmarkIncrementalContinuous(b *testing.B) {
	for _, mode := range []string{"full", "incremental"} {
		for _, preload := range []int{100, 1000, 10000} {
			b.Run(fmt.Sprintf("%s/events=%d", mode, preload), func(b *testing.B) {
				structure, err := tagstruct.ParseString(benchCreditStructure)
				if err != nil {
					b.Fatal(err)
				}
				st := fragment.NewStore(structure)
				base := time.Date(2003, time.November, 1, 0, 0, 0, 0, time.UTC)
				el := func(src string) *xmldom.Node { return xmldom.MustParseString(src).Root() }
				// announce every filler up front — preloaded and arriving —
				// so arrivals are pure event ingest, no re-announcement
				var holes strings.Builder
				holes.WriteString(`<hole id="2" tsid="4"/>`)
				for i := 0; i < preload+b.N; i++ {
					fmt.Fprintf(&holes, `<hole id="%d" tsid="5"/>`, 100+i)
				}
				mustAdd(b, st, fragment.New(0, 1, base, el(`<creditAccounts><hole id="1" tsid="2"/></creditAccounts>`)))
				mustAdd(b, st, fragment.New(1, 2, base, el(`<account id="1234"><customer>J</customer>`+holes.String()+`</account>`)))
				mustAdd(b, st, fragment.New(2, 4, base, el(`<creditLimit>5000</creditLimit>`)))
				newTx := func(i int) *fragment.Fragment {
					tx := fmt.Sprintf(`<transaction id="t%d"><vendor>V</vendor><amount>%d</amount></transaction>`, i, 10+i%90)
					return fragment.New(100+i, 5, base.Add(time.Duration(i)*time.Second), el(tx))
				}
				for i := 0; i < preload; i++ {
					mustAdd(b, st, newTx(i))
				}
				rt := ixcql.NewRuntime()
				rt.RegisterStream("credit", st)
				q, err := rt.Compile(`for $t in stream("credit")//transaction return $t`, ixcql.QaCPlus)
				if err != nil {
					b.Fatal(err)
				}
				at := base.Add(time.Duration(preload) * time.Second)
				cq := stream.NewContinuousQuery(q, func(stream.Result) {})
				cq.Clock = func() time.Time { return at }
				if mode == "incremental" {
					cq.WithIncremental(true)
				}
				// seed the standing state outside the timer
				if err := cq.EvaluateFragment(nil); err != nil {
					b.Fatal(err)
				}
				// prebuild the arrival fragments so the timer measures
				// ingest + evaluation, not payload parsing
				arrivals := make([]*fragment.Fragment, b.N)
				for i := range arrivals {
					arrivals[i] = newTx(preload + i)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					f := arrivals[i]
					if f.ValidTime.After(at) {
						at = f.ValidTime
					}
					mustAdd(b, st, f)
					if err := cq.EvaluateFragment(f); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(cq.BufferHWMBytes()), "buffered-bytes-hwm")
				s := q.LastStats()
				b.ReportMetric(float64(s.HandlerInvocations), "handlers/op")
			})
		}
	}
}
