package xcql_test

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"xcql"
)

const traceSmokeStructure = `<stream:structure>
<tag type="snapshot" id="1" name="creditAccounts">
  <tag type="temporal" id="2" name="account">
    <tag type="snapshot" id="3" name="customer"/>
    <tag type="event" id="5" name="transaction">
      <tag type="snapshot" id="8" name="amount"/>
    </tag>
  </tag>
</tag>
</stream:structure>`

// TestTraceSmoke is the PR's acceptance test: one flight recorder spans
// the entire durable push pipeline — publish → segstore append/fsync →
// TCP (with fault-injected resets forcing at least one reconnect) →
// client delivery → shared registry evaluation → K=4 subscriber
// fan-outs — and a single trace id links all of it, with correct
// parent/child span edges. Runs under -race via make trace-smoke; the
// goroutine baseline check keeps the tracer from leaking anything.
func TestTraceSmoke(t *testing.T) {
	baseline := runtime.NumGoroutine()

	rec := xcql.NewFlightRecorder(xcql.FlightRecorderOptions{SampleEvery: 1, Capacity: 1024})

	// durable server
	seg, _, err := xcql.OpenSegStore(t.TempDir(), xcql.SegStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	structure := xcql.MustParseTagStructure(traceSmokeStructure)
	server, err := xcql.RecoverServer("credit", structure, seg)
	if err != nil {
		t.Fatal(err)
	}
	server.SetFlightRecorder(rec)
	seg.SetFlightRecorder(rec)

	// TCP with periodic connection resets: the client must reconnect and
	// resume at least once mid-burst
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	injector := xcql.NewFaultInjector(xcql.FaultPlan{Seed: 3, ResetEvery: 7})
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = xcql.ServeTCPOptions(server, ln, xcql.ServeOptions{Faults: injector})
	}()

	client, err := xcql.Dial(ln.Addr().String(), xcql.DialOptions{
		Reconnect:      true,
		InitialBackoff: 5 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		Rand:           rand.New(rand.NewSource(3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	client.SetFlightRecorder(rec)

	// K=4 standing registrations sharing one evaluation per arrival
	engine := xcql.NewEngine()
	engine.AttachClient(client)
	engine.SetFlightRecorder(rec)
	qreg := engine.Registry()
	qreg.AttachClient(client)

	const K = 4
	var mu sync.Mutex
	traceIDs := make([]map[uint64]bool, K)
	for i := 0; i < K; i++ {
		i := i
		traceIDs[i] = make(map[uint64]bool)
		q, err := engine.Compile(fmt.Sprintf(
			`for $t in stream("credit")//transaction where $t/amount > %d return $t/amount`, i),
			xcql.QaCPlus)
		if err != nil {
			t.Fatal(err)
		}
		reg, err := qreg.Register(q, xcql.RegistryOptions{
			OnResult: func(res xcql.RegistryResult) {
				mu.Lock()
				if res.TraceID != 0 {
					traceIDs[i][res.TraceID] = true
				}
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer reg.Close()
	}

	// publish a burst long enough to cross several forced resets
	base := time.Now().UTC().Add(-time.Hour)
	el := func(src string) *xcql.Node { return xcql.MustParseDocument(src).Root() }
	server.Publish(xcql.NewFragment(0, 1, base,
		el(`<creditAccounts><hole id="1" tsid="2"/></creditAccounts>`)))
	server.Publish(xcql.NewFragment(1, 2, base,
		el(`<account id="1"><customer>A</customer></account>`)))
	holes := ""
	const events = 30
	for i := 0; i < events; i++ {
		txID := 100 + i
		holes += fmt.Sprintf(`<hole id="%d" tsid="5"/>`, txID)
		at := base.Add(time.Duration(i+1) * time.Minute)
		server.Publish(xcql.NewFragment(1, 2, at,
			el(fmt.Sprintf(`<account id="1"><customer>A</customer>%s</account>`, holes))))
		server.Publish(xcql.NewFragment(txID, 5, at,
			el(fmt.Sprintf(`<transaction id="t%d"><amount>%d</amount></transaction>`, i, 100*(i+1)))))
	}

	// orderly drain: eos triggers the client's final catch-up replay
	server.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := client.Stats()
		if st.LastSeq == server.Stats().LatestSeq && st.Missing == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := client.Stats(); st.Reconnects < 1 {
		t.Fatalf("fault injection never forced a reconnect (stats %+v)", st)
	}
	// let in-flight evaluations settle, then finalize every trace
	time.Sleep(50 * time.Millisecond)
	rec.Flush()

	// find a trace that crossed every layer with full fan-out
	type spanIdx map[uint64]xcql.TraceSpan
	var best *xcql.TraceRecord
	var bestFanout int
	for _, tr := range rec.Traces(xcql.TraceFilter{}) {
		names := map[string]int{}
		for _, sp := range tr.Spans {
			names[sp.Name]++
		}
		if names["publish"] == 1 && names["segstore.append"] >= 1 &&
			names["deliver"] >= 1 && names["registry.eval"] >= 1 &&
			names["fanout"] > bestFanout {
			best, bestFanout = tr, names["fanout"]
		}
	}
	if best == nil {
		t.Fatalf("no trace links publish→append→deliver→registry.eval (kept %d traces)",
			len(rec.Traces(xcql.TraceFilter{})))
	}
	if bestFanout < K {
		t.Fatalf("best trace fans out to %d registrations, want >= %d", bestFanout, K)
	}

	// verify the causal edges span by span
	byID := make(spanIdx, len(best.Spans))
	for _, sp := range best.Spans {
		byID[sp.SpanID] = sp
	}
	var publishID uint64
	for _, sp := range best.Spans {
		if sp.Name == "publish" {
			publishID = sp.SpanID
		}
	}
	if publishID == 0 {
		t.Fatal("publish span missing")
	}
	for _, sp := range best.Spans {
		switch sp.Name {
		case "publish":
			if sp.Parent != 0 {
				t.Fatalf("publish has a parent: %+v", sp)
			}
		case "segstore.append", "deliver", "registry.eval", "cq.eval", "inc.recompute":
			if sp.Parent != publishID {
				t.Fatalf("%s parented to %d, want publish %d", sp.Name, sp.Parent, publishID)
			}
		case "segstore.fsync":
			if p, ok := byID[sp.Parent]; !ok || p.Name != "segstore.append" {
				t.Fatalf("fsync parented to %d (%s), want segstore.append", sp.Parent, p.Name)
			}
		case "fanout":
			if p, ok := byID[sp.Parent]; !ok || p.Name != "registry.eval" {
				t.Fatalf("fanout parented to %d (%s), want registry.eval", sp.Parent, p.Name)
			}
			if sp.Reg == 0 {
				t.Fatalf("fanout span missing registration id: %+v", sp)
			}
		}
	}

	// every registration's deliveries carried trace ids, and the best
	// trace reached every one of them
	mu.Lock()
	for i := 0; i < K; i++ {
		if len(traceIDs[i]) == 0 {
			t.Fatalf("registration %d never saw a traced result", i)
		}
		if !traceIDs[i][best.TraceID] {
			t.Fatalf("registration %d missing trace %016x", i, best.TraceID)
		}
	}
	mu.Unlock()

	// teardown everything with its own goroutines, then check the floor
	client.Close()
	ln.Close()
	<-serveDone
	seg.Close()
	leakDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(leakDeadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutine leak: %d running, baseline %d\n%s", runtime.NumGoroutine(), baseline, buf)
}
