package xcql_test

// Durability benchmarks for the segment store (PR 7).
//
//	BenchmarkRecovery/…          cold Open of a log with n committed
//	                             frames: replay + CRC verification cost
//	BenchmarkSnapshotBootstrap/… SubscribeFrom past the replay window on
//	                             a durable server: the snapshot+delta
//	                             bootstrap path a reconnecting client hits
//
// Under -short only the small log size runs.

import (
	"fmt"
	"testing"
	"time"

	"xcql/internal/fragment"
	"xcql/internal/segstore"
	"xcql/internal/stream"
	"xcql/internal/tagstruct"
	"xcql/internal/xmldom"
)

// segBenchFragments builds n tiny creditLimit fragments with ascending
// valid times and pre-stamped sequence numbers 1..n.
func segBenchFragments(n int) []*fragment.Fragment {
	base := time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC)
	frags := make([]*fragment.Fragment, n)
	for i := 0; i < n; i++ {
		payload := xmldom.TextElem("creditLimit", fmt.Sprintf("%d", 1000+i))
		frags[i] = fragment.New(i+1, 4, base.Add(time.Duration(i)*time.Second), payload).
			WithSeq(uint64(i + 1))
	}
	return frags
}

// BenchmarkRecovery measures a cold Open of a multi-segment log: frame
// replay, CRC verification and snapshot loading, the latency a process
// pays before it can serve its first query after a crash.
func BenchmarkRecovery(b *testing.B) {
	sizes := []int{256, 2048}
	if testing.Short() {
		sizes = sizes[:1]
	}
	for _, n := range sizes {
		b.Run(fmt.Sprintf("frames=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			seg, _, err := segstore.Open(dir, segstore.Options{
				NoSync:          true,
				MaxSegmentBytes: 64 << 10,
			})
			if err != nil {
				b.Fatal(err)
			}
			frags := segBenchFragments(n)
			for i, f := range frags {
				if err := seg.Append(f); err != nil {
					b.Fatal(err)
				}
				if i == n/2 {
					// half the frames behind a snapshot, half in raw
					// segments — the mixed layout recovery really sees
					if _, err := seg.Snapshot(); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := seg.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, rep, err := segstore.Open(dir, segstore.Options{NoSync: true})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Degraded != "" || rep.Frames != n {
					b.Fatalf("recovery report %v, want %d clean frames", rep, n)
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotBootstrap measures SubscribeFrom for a subscriber
// whose position predates the in-memory replay window, forcing the
// durable-log bridge: the cost of bootstrapping a long-offline client.
func BenchmarkSnapshotBootstrap(b *testing.B) {
	structure := tagstruct.MustParseString(`<stream:structure>
<tag type="temporal" id="4" name="creditLimit"/>
</stream:structure>`)
	sizes := []int{256, 2048}
	if testing.Short() {
		sizes = sizes[:1]
	}
	for _, n := range sizes {
		b.Run(fmt.Sprintf("frames=%d", n), func(b *testing.B) {
			seg, _, err := segstore.Open(b.TempDir(), segstore.Options{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			defer seg.Close()
			server := stream.NewServer("credit", structure)
			defer server.Close()
			server.SetHistoryLimit(16)
			server.AttachDurable(seg)
			base := time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC)
			for i := 0; i < n; i++ {
				payload := xmldom.TextElem("creditLimit", fmt.Sprintf("%d", 1000+i))
				server.Publish(fragment.New(i+1, 4, base.Add(time.Duration(i)*time.Second), payload))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sub := server.SubscribeFrom(n+16, 0)
				got := 0
			drain:
				for {
					select {
					case <-sub.C():
						got++
					default:
						break drain
					}
				}
				if got != n {
					b.Fatalf("bootstrapped %d frames, want %d", got, n)
				}
				sub.Cancel()
			}
		})
	}
}
